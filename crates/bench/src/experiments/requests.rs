//! The `requests` target: per-request span-tree KPIs across every serving
//! layer, with a CI tolerance gate.
//!
//! Every server in the workspace now threads a [`RequestContext`] through
//! the request lifecycle — admission, scheduler queue, micro-batch
//! membership, dispatch (with retries, breaker rejects, and degradation
//! rebuilds), cluster fan-out legs, and the straggler-merge wait — and
//! emits one [`RequestTrace`] per request whose stage spans partition the
//! admission→completion interval *exactly*. This target replays fixed
//! traces against the single-GPU server, the auto-tuned server, 8-GPU
//! sharded clusters on both priced fabrics, and a 4-GPU cluster that loses
//! a device mid-trace, then distills the span trees into per-stage p99s
//! and reconciliation flags.
//!
//! Everything is a pure function of the fixed seeds: points are
//! independent simulations merged in fixed order, so the report and
//! `BENCH_requests.json` are byte-identical across runs and for any
//! `--jobs` count.
//!
//! The headline invariants, checked on every run:
//!
//! - every request in every point carries a span tree, and each tree's
//!   stage sum reconciles **bitwise** with its end-to-end latency
//!   ([`RequestTrace::validate`]);
//! - single-GPU paths never record a merge stage;
//! - at the widest fan-out the host-staged fabric's p99 pays a larger
//!   straggler-merge wait than the NVLink-peer fabric, and on the
//!   host-staged cluster the merge stage dominates the non-queue tail.
//!
//! When a committed `BENCH_requests.json` exists (override the path with
//! `WINDEX_REQUESTS`), the fresh KPIs are gated against it: discrete
//! outcomes (completed, shed, span-tree counts, reconciliation flags)
//! must match exactly; continuous ones (p99s per stage) get a 2% relative
//! band for benign cost-model churn. A missing committed file is a
//! warning — the recording run.

use crate::config::ExpConfig;
use crate::output::{num6, Experiment};
use serde::Serialize;
use serde_json::{json, Value};
use windex_serve::prelude::*;
use windex_sim::ChaosScenario;

/// Format-version marker for `BENCH_requests.json`.
pub(crate) const SCHEMA_VERSION: u32 = 1;

/// Requests in the fan-out trace shared by the single-GPU, tuned, and
/// 8-GPU points.
const SCALE_REQUESTS: usize = 256;

/// Offered load of the fan-out trace, requests per virtual second. At
/// 2 000 req/s of 256-2 048-key requests a single V100 saturates and
/// sheds (exercising shed-request span trees) while the 8-GPU clusters
/// drain with zero queue wait, leaving the straggler-merge stage as the
/// dominant tail component — the contrast under test.
const SCALE_LOAD_RPS: f64 = 2_000.0;

/// Seed of the fan-out trace.
const SCALE_SEED: u64 = 11;

/// Requests in the chaos trace. At 8 000 req/s it spans ~64 ms of virtual
/// time, comfortably covering the DeviceLoss window [20 ms, 35 ms).
const CHAOS_REQUESTS: usize = 512;

/// Offered load of the chaos trace.
const CHAOS_LOAD_RPS: f64 = 8_000.0;

/// Seed of the chaos trace.
const CHAOS_TRACE_SEED: u64 = 29;

/// Seed of the chaos schedule family (same family as the cluster target).
const CHAOS_SEED: u64 = 40;

/// The GPU lost mid-trace in the chaos point.
const LOST_GPU: usize = 1;

/// GPUs in the chaos cluster.
const CHAOS_GPUS: usize = 4;

/// GPUs in the wide fan-out points.
const WIDE_GPUS: usize = 8;

/// Relative tolerance for continuous KPIs against the committed file.
const REL_TOL: f64 = 0.02;

/// Where the committed reference lives unless `WINDEX_REQUESTS` overrides.
const DEFAULT_REQUESTS_PATH: &str = "BENCH_requests.json";

/// One serving layer's span-tree KPIs on its fixed trace.
#[derive(Debug, Clone, Serialize)]
struct RequestPoint {
    /// Which serving layer produced the point.
    label: &'static str,
    gpus: usize,
    /// Priced inter-GPU fabric (`"-"` on single-GPU layers).
    link: &'static str,
    requests: usize,
    completed: usize,
    shed: usize,
    /// Span trees emitted — must equal `requests` (every request is
    /// traced, shed ones included).
    span_trees: usize,
    /// Whether every span tree passed [`RequestTrace::validate`]: stage
    /// spans tile admission→completion and their sum reconciles bitwise
    /// with the end-to-end latency.
    stage_sum_exact: bool,
    /// End-to-end p99 over served requests, virtual seconds.
    p99_s: f64,
    /// Per-stage p99s over *all* span trees, virtual seconds.
    queue_p99_s: f64,
    batch_p99_s: f64,
    service_p99_s: f64,
    merge_p99_s: f64,
    other_p99_s: f64,
    /// `merge_p99_s / p99_s` (0 when the tail is empty): how much of the
    /// tail is cross-shard straggler wait.
    merge_share: f64,
}

/// The `BENCH_requests.json` payload.
#[derive(Debug, Clone, Serialize)]
struct RequestsBench {
    schema: u32,
    scale_requests: usize,
    chaos_requests: usize,
    chaos_seed: u64,
    points: Vec<RequestPoint>,
}

/// Round to 6 decimals: canonical on-disk float form, keeps the gate from
/// chasing last-bit jitter from benign refactors.
fn r6(v: f64) -> f64 {
    (v * 1e6).round() / 1e6
}

/// The served relation: 1 paper-GiB of dense sorted keys at paper scale
/// (fixed, like the cluster target, so the JSON is mode-independent).
fn requests_relation() -> Relation {
    Relation::unique_sorted(
        Scale::PAPER.sim_tuples_for_paper_gib(1.0),
        KeyDistribution::Dense,
        42,
    )
}

fn trace(r: &Relation, requests: usize, load_rps: f64, seed: u64) -> Vec<TimedRequest> {
    // Wide requests (up to 512 keys) so cluster points fan out across
    // shards and the merge stage has stragglers to wait on.
    generate_trace(
        &TraceConfig {
            seed,
            tenants: 4,
            requests,
            min_keys: 256,
            max_keys: 2_048,
            offered_load_rps: load_rps,
            deadline_s: None,
        },
        r,
    )
}

/// Distill one layer's span trees into a [`RequestPoint`].
#[allow(clippy::too_many_arguments)]
fn point(
    label: &'static str,
    gpus: usize,
    link: &'static str,
    requests: usize,
    completed: usize,
    shed: usize,
    latency: &LatencyStats,
    stages: &StageLatencyStats,
    traces: &[RequestTrace],
) -> RequestPoint {
    let stage_sum_exact = traces.len() == requests && traces.iter().all(|t| t.validate().is_ok());
    let p99 = latency.p99_s;
    RequestPoint {
        label,
        gpus,
        link,
        requests,
        completed,
        shed,
        span_trees: traces.len(),
        stage_sum_exact,
        p99_s: r6(p99),
        queue_p99_s: r6(stages.queue.p99_s),
        batch_p99_s: r6(stages.batch.p99_s),
        service_p99_s: r6(stages.service.p99_s),
        merge_p99_s: r6(stages.merge.p99_s),
        other_p99_s: r6(stages.other.p99_s),
        merge_share: if p99 > 0.0 {
            r6(stages.merge.p99_s / p99)
        } else {
            0.0
        },
    }
}

/// The single-GPU server point: queue/batch/service stages, no legs.
fn run_server_point(r: &Relation, tr: &[TimedRequest]) -> RequestPoint {
    let mut gpu = Gpu::new(GpuSpec::v100_nvlink2(Scale::PAPER));
    let mut server = Server::new(&mut gpu, ServeConfig::default(), r.clone())
        .expect("requests server must construct");
    let rep = server
        .run(&mut gpu, tr)
        .expect("requests serve trace must complete")
        .report;
    point(
        "server",
        1,
        "-",
        rep.requests,
        rep.completed,
        rep.shed,
        &rep.latency,
        &rep.stages,
        &rep.traces,
    )
}

/// The auto-tuned server point: every tenant serves the same relation, so
/// the fan-out trace's keys resolve on each tenant's own copy.
fn run_tuned_point(r: &Relation, tr: &[TimedRequest]) -> RequestPoint {
    let tenants: Vec<(TenantId, Relation)> = (0..4).map(|id| (id as TenantId, r.clone())).collect();
    let mut srv = TunedServer::new(
        GpuSpec::v100_nvlink2(Scale::PAPER),
        TunedConfig::default(),
        tenants,
        None,
    )
    .expect("requests tuned server must construct");
    let rep = srv.run(tr).expect("requests tuned trace must complete");
    point(
        "tuned",
        1,
        "-",
        rep.requests,
        rep.completed,
        0,
        &rep.latency,
        &rep.stages,
        &rep.traces,
    )
}

/// One wide-fan-out cluster point under a priced link, calm devices.
fn run_cluster_point(
    r: &Relation,
    tr: &[TimedRequest],
    link: &'static str,
    spec: InterconnectSpec,
) -> RequestPoint {
    let cfg = ClusterConfig {
        serve: ServeConfig::default(),
        cluster: ClusterSpec::sharded(WIDE_GPUS, GpuSpec::v100_nvlink2(Scale::PAPER), spec),
    };
    let mut cluster = ClusterServer::new(cfg, r.clone()).expect("requests cluster must construct");
    let rep = cluster
        .run(tr)
        .expect("requests cluster trace must complete")
        .report;
    point(
        "cluster",
        WIDE_GPUS,
        link,
        rep.requests,
        rep.completed,
        rep.shed,
        &rep.latency,
        &rep.stages,
        &rep.traces,
    )
}

/// The chaos point: a sharded 4-GPU cluster loses a device mid-trace;
/// the re-shard's rebuild and redrives land inside the affected requests'
/// service/merge stages, and every request still reconciles exactly.
fn run_chaos_point(r: &Relation, tr: &[TimedRequest]) -> RequestPoint {
    let cfg = ClusterConfig {
        serve: ServeConfig::default(),
        cluster: ClusterSpec::sharded(
            CHAOS_GPUS,
            GpuSpec::v100_nvlink2(Scale::PAPER),
            InterconnectSpec::nvlink4_peer(),
        ),
    };
    let mut cluster = ClusterServer::new(cfg, r.clone()).expect("chaos cluster must construct");
    cluster
        .set_chaos_schedules(
            ChaosScenario::DeviceLoss.cluster_schedules(CHAOS_SEED, CHAOS_GPUS, LOST_GPU),
        )
        .expect("cluster chaos schedules are valid");
    let rep = cluster.run(tr).expect("chaos trace must complete").report;
    point(
        "chaos",
        CHAOS_GPUS,
        "nvlink4_peer",
        rep.requests,
        rep.completed,
        rep.shed,
        &rep.latency,
        &rep.stages,
        &rep.traces,
    )
}

/// Compute all points with `jobs` workers, merged in fixed order. Workers
/// only decide *when* a point runs, never *what* it computes, so any job
/// count merges identically.
fn compute(jobs: usize) -> RequestsBench {
    let r = requests_relation();
    let scale_trace = trace(&r, SCALE_REQUESTS, SCALE_LOAD_RPS, SCALE_SEED);
    let chaos_trace = trace(&r, CHAOS_REQUESTS, CHAOS_LOAD_RPS, CHAOS_TRACE_SEED);
    let total = 5usize;
    let run_task = |i: usize| -> RequestPoint {
        match i {
            0 => run_server_point(&r, &scale_trace),
            1 => run_tuned_point(&r, &scale_trace),
            2 => run_cluster_point(
                &r,
                &scale_trace,
                "nvlink4_peer",
                InterconnectSpec::nvlink4_peer(),
            ),
            3 => run_cluster_point(
                &r,
                &scale_trace,
                "pcie4_host_staged",
                InterconnectSpec::pcie4_host_staged(),
            ),
            _ => run_chaos_point(&r, &chaos_trace),
        }
    };
    let slots: Vec<Option<RequestPoint>> = if jobs <= 1 {
        (0..total).map(|i| Some(run_task(i))).collect()
    } else {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let next = AtomicUsize::new(0);
        let mut slots: Vec<Option<RequestPoint>> = (0..total).map(|_| None).collect();
        std::thread::scope(|scope| {
            let workers: Vec<_> = (0..jobs)
                .map(|_| {
                    scope.spawn(|| {
                        let mut mine = Vec::new();
                        loop {
                            let i = next.fetch_add(1, Ordering::Relaxed);
                            if i >= total {
                                break;
                            }
                            mine.push((i, run_task(i)));
                        }
                        mine
                    })
                })
                .collect();
            for w in workers {
                for (i, p) in w.join().expect("requests worker panicked") {
                    slots[i] = Some(p);
                }
            }
        });
        slots
    };
    RequestsBench {
        schema: SCHEMA_VERSION,
        scale_requests: SCALE_REQUESTS,
        chaos_requests: CHAOS_REQUESTS,
        chaos_seed: CHAOS_SEED,
        points: slots.into_iter().map(|s| s.expect("point ran")).collect(),
    }
}

/// Invariants that hold regardless of any committed reference.
fn check_invariants(bench: &RequestsBench) -> Result<(), String> {
    let expected = ["server", "tuned", "cluster", "cluster", "chaos"];
    if bench.points.len() != expected.len() {
        return Err(format!(
            "expected {} request points, found {}",
            expected.len(),
            bench.points.len()
        ));
    }
    for (p, want) in bench.points.iter().zip(expected) {
        if p.label != want {
            return Err(format!(
                "point order mismatch: '{}' where '{want}' expected",
                p.label
            ));
        }
        // The tentpole contract: every request carries a span tree and
        // every tree's stage sum reconciles bitwise with its latency.
        if p.span_trees != p.requests {
            return Err(format!(
                "[{} {}] every request must carry a span tree: {} trees for {} requests",
                p.label, p.link, p.span_trees, p.requests
            ));
        }
        if !p.stage_sum_exact {
            return Err(format!(
                "[{} {}] stage spans must reconcile exactly with end-to-end latency",
                p.label, p.link
            ));
        }
        if p.completed + p.shed != p.requests {
            return Err(format!(
                "[{} {}] {} completed + {} shed != {} requests",
                p.label, p.link, p.completed, p.shed, p.requests
            ));
        }
        if !p.p99_s.is_finite() || p.p99_s <= 0.0 {
            return Err(format!(
                "[{} {}] p99 must be finite positive, got {}",
                p.label, p.link, p.p99_s
            ));
        }
        // Single-GPU paths have no shards to straggle on.
        if p.gpus == 1 && p.merge_p99_s != 0.0 {
            return Err(format!(
                "[{}] single-GPU path must not record a merge stage: {}",
                p.label, p.merge_p99_s
            ));
        }
        if p.gpus > 1 && p.merge_p99_s <= 0.0 {
            return Err(format!(
                "[{} {}] cluster path must record straggler-merge wait",
                p.label, p.link
            ));
        }
    }
    // The fabric contrast: the host-staged bounce pays a larger straggler
    // wait than the peer fabric at the same fan-out, and on the
    // host-staged cluster the merge stage dominates the non-queue tail.
    let nv8 = &bench.points[2];
    let pcie8 = &bench.points[3];
    if pcie8.merge_p99_s <= nv8.merge_p99_s {
        return Err(format!(
            "host-staged merge p99 must exceed NVLink peer at {WIDE_GPUS} GPUs: \
             staged {} vs nvlink {}",
            pcie8.merge_p99_s, nv8.merge_p99_s
        ));
    }
    for (stage, v) in [
        ("queue", pcie8.queue_p99_s),
        ("batch", pcie8.batch_p99_s),
        ("service", pcie8.service_p99_s),
        ("other", pcie8.other_p99_s),
    ] {
        if pcie8.merge_p99_s <= v {
            return Err(format!(
                "host-staged x{WIDE_GPUS} tail must be merge-dominated: \
                 merge p99 {} <= {stage} p99 {v}",
                pcie8.merge_p99_s
            ));
        }
    }
    Ok(())
}

fn field<'v>(entry: &'v Value, key: &str) -> Result<&'v Value, String> {
    entry
        .get(key)
        .ok_or_else(|| format!("requests entry missing field '{key}'"))
}

fn f64_field(entry: &Value, key: &str) -> Result<f64, String> {
    field(entry, key)?
        .as_f64()
        .ok_or_else(|| format!("requests field '{key}' is not a number"))
}

fn u64_field(entry: &Value, key: &str) -> Result<u64, String> {
    field(entry, key)?
        .as_u64()
        .ok_or_else(|| format!("requests field '{key}' is not an unsigned integer"))
}

/// Whether `fresh` is within `tol` of `committed`, relatively.
fn rel_close(fresh: f64, committed: f64, tol: f64) -> bool {
    if committed == 0.0 {
        fresh == 0.0
    } else {
        ((fresh - committed) / committed).abs() <= tol
    }
}

/// Diff one fresh point against its committed counterpart.
fn diff_point(fresh: &RequestPoint, committed: &Value) -> Result<Vec<String>, String> {
    let mut out = Vec::new();
    for (key, have) in [
        ("gpus", fresh.gpus as u64),
        ("requests", fresh.requests as u64),
        ("completed", fresh.completed as u64),
        ("shed", fresh.shed as u64),
        ("span_trees", fresh.span_trees as u64),
    ] {
        let want = u64_field(committed, key)?;
        if have != want {
            out.push(format!("{key}: committed {want}, fresh {have}"));
        }
    }
    let exact = field(committed, "stage_sum_exact")?
        .as_bool()
        .ok_or("requests field 'stage_sum_exact' is not a bool")?;
    if fresh.stage_sum_exact != exact {
        out.push(format!(
            "stage_sum_exact: committed {exact}, fresh {}",
            fresh.stage_sum_exact
        ));
    }
    for (key, have) in [
        ("p99_s", fresh.p99_s),
        ("queue_p99_s", fresh.queue_p99_s),
        ("batch_p99_s", fresh.batch_p99_s),
        ("service_p99_s", fresh.service_p99_s),
        ("merge_p99_s", fresh.merge_p99_s),
        ("other_p99_s", fresh.other_p99_s),
        ("merge_share", fresh.merge_share),
    ] {
        let want = f64_field(committed, key)?;
        if !rel_close(have, want, REL_TOL) {
            out.push(format!(
                "{key}: committed {want}, fresh {have} (>{:.0}% off)",
                REL_TOL * 100.0
            ));
        }
    }
    Ok(out)
}

/// Gate the fresh bench against a committed file, if one exists.
fn gate(fresh: &RequestsBench, path: &str) -> Result<String, String> {
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(_) => {
            return Ok(format!(
                "no committed reference at '{path}'; gate skipped (recording run)"
            ))
        }
    };
    let root: Value =
        serde_json::from_str(&text).map_err(|e| format!("'{path}' is not JSON: {e}"))?;
    let schema = u64_field(&root, "schema")?;
    if schema != u64::from(SCHEMA_VERSION) {
        return Err(format!(
            "requests schema v{schema} != expected v{SCHEMA_VERSION}; \
             regenerate with `experiments requests`"
        ));
    }
    let points = field(&root, "points")?
        .as_array()
        .ok_or("requests 'points' is not an array")?;
    if points.len() != fresh.points.len() {
        return Err(format!(
            "committed file has {} points, fresh run has {}",
            points.len(),
            fresh.points.len()
        ));
    }
    let mut violations = Vec::new();
    for (f, c) in fresh.points.iter().zip(points) {
        let label = field(c, "label")?
            .as_str()
            .ok_or("requests field 'label' is not a string")?;
        let link = field(c, "link")?
            .as_str()
            .ok_or("requests field 'link' is not a string")?;
        if label != f.label || link != f.link {
            return Err(format!(
                "point order mismatch: committed '{label}'/'{link}', fresh '{}'/'{}'",
                f.label, f.link
            ));
        }
        for v in diff_point(f, c)? {
            violations.push(format!("[{} {}] {v}", f.label, f.link));
        }
    }
    if violations.is_empty() {
        Ok(format!(
            "gate: {} request points within tolerance of '{path}' — ok",
            fresh.points.len()
        ))
    } else {
        Err(format!(
            "requests KPI drift vs '{path}':\n  {}",
            violations.join("\n  ")
        ))
    }
}

/// The `requests` target. `Err` (→ nonzero exit) on invariant or gate
/// violations.
pub fn requests(cfg: &ExpConfig) -> Result<Experiment, String> {
    let bench = compute(cfg.jobs);
    check_invariants(&bench)?;

    let path =
        std::env::var("WINDEX_REQUESTS").unwrap_or_else(|_| DEFAULT_REQUESTS_PATH.to_string());
    let gate_note = gate(&bench, &path)?;

    let out_path = cfg.out_dir.join("BENCH_requests.json");
    let mut text = serde_json::to_string_pretty(&bench).expect("requests bench serializes");
    text.push('\n');
    let write =
        std::fs::create_dir_all(&cfg.out_dir).and_then(|()| std::fs::write(&out_path, text));
    if let Err(e) = write {
        eprintln!("warning: could not write {}: {e}", out_path.display());
    }

    let rows: Vec<Vec<Value>> = bench
        .points
        .iter()
        .map(|p| {
            vec![
                json!(format!("{} x{}", p.label, p.gpus)),
                json!(p.link),
                json!(p.requests),
                json!(p.completed),
                json!(p.shed),
                json!(p.stage_sum_exact),
                num6(p.p99_s * 1e3),
                num6(p.queue_p99_s * 1e3),
                num6(p.service_p99_s * 1e3),
                num6(p.merge_p99_s * 1e3),
                num6(p.merge_share),
            ]
        })
        .collect();
    Ok(Experiment {
        id: "requests".into(),
        title: "Request tracing: span-tree stage decomposition across every serving layer".into(),
        columns: vec![
            "layer".into(),
            "link".into(),
            "requests".into(),
            "completed".into(),
            "shed".into(),
            "stage_sum_exact".into(),
            "p99_ms".into(),
            "queue_p99_ms".into(),
            "service_p99_ms".into(),
            "merge_p99_ms".into(),
            "merge_share".into(),
        ],
        rows,
        notes: vec![
            format!(
                "{SCALE_REQUESTS}-request fan-out trace ({SCALE_LOAD_RPS:.0} req/s offered) \
                 against the single-GPU server, the auto-tuned server, and sharded x{WIDE_GPUS} \
                 clusters on both priced fabrics; every request's stage spans sum bitwise to its \
                 end-to-end latency"
            ),
            format!(
                "chaos row loses GPU {LOST_GPU} of {CHAOS_GPUS} mid-trace (chaos seed \
                 {CHAOS_SEED}): recovery rebuilds land inside the affected spans and every \
                 tree still reconciles"
            ),
            gate_note,
            "also written as BENCH_requests.json (gated against the committed copy)".into(),
        ],
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bench() -> RequestsBench {
        compute(1)
    }

    #[test]
    fn points_hold_span_tree_invariants() {
        let b = bench();
        check_invariants(&b).expect("invariants hold");
        // The merge stage is the cluster's signature: absent on one GPU,
        // present and fabric-sensitive at wide fan-out.
        assert_eq!(b.points[0].merge_p99_s, 0.0);
        assert_eq!(b.points[1].merge_p99_s, 0.0);
        assert!(b.points[3].merge_p99_s > b.points[2].merge_p99_s);
        // The overloaded single GPU sheds; shed requests still carry
        // reconciling span trees (stage_sum_exact above covers them).
        assert!(b.points[0].shed > 0);
    }

    #[test]
    fn jobs_counts_merge_byte_identically() {
        let a = serde_json::to_string(&compute(1)).unwrap();
        let b = serde_json::to_string(&compute(4)).unwrap();
        assert_eq!(a, b, "--jobs must not change BENCH_requests.json");
    }

    #[test]
    fn gate_flags_drift_and_accepts_self() {
        let b = bench();
        let dir = std::env::temp_dir().join("windex-requests-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("requests.json");
        std::fs::write(&path, serde_json::to_string_pretty(&b).unwrap()).unwrap();
        gate(&b, path.to_str().unwrap()).expect("self gate passes");
        let mut drifted = b.clone();
        drifted.points[0].completed += 1;
        std::fs::write(&path, serde_json::to_string_pretty(&drifted).unwrap()).unwrap();
        let err = gate(&b, path.to_str().unwrap()).unwrap_err();
        assert!(err.contains("completed"), "{err}");
        let note = gate(&b, "/nonexistent/requests.json").unwrap();
        assert!(note.contains("recording run"));
    }
}
