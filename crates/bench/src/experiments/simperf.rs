//! The `simperf` target: measures the simulator's raw speed and gates it.
//!
//! Every other target reports *simulated* performance; this one reports
//! how fast the simulator itself chews through simulated work. It runs the
//! canonical baseline seed matrix a few times, takes the best wall-clock
//! time (the least noisy estimator on a shared machine), and normalizes by
//! the total simulated memory-system accesses performed (L1 lookups plus
//! TLB lookups — the unit of work of the engine's hot path).
//!
//! The result is written as `BENCH_simperf.json`. When a committed copy
//! exists at the repo root (override with `WINDEX_SIMPERF`), the target
//! *fails* if the fresh accesses-per-second falls more than 20 % below the
//! committed number — the engine-speed analogue of the `regress` gate. A
//! missing committed file is a warning, not a failure, so the target stays
//! usable on machines that never recorded a reference point.
//!
//! Unlike `baseline`, the JSON here is machine-dependent by design: it
//! records wall-clock throughput, not simulated counters.

use crate::config::ExpConfig;
use crate::experiments::baseline;
use crate::output::{num, Experiment};
use serde::Serialize;
use serde_json::json;

/// Format-version marker.
pub(crate) const SCHEMA_VERSION: u32 = 1;

/// Matrix repetitions; best-of is reported.
const REPS: usize = 3;

/// Fail when fresh accesses/sec drops below this fraction of committed.
const REGRESSION_FLOOR: f64 = 0.80;

/// Where the committed reference lives unless `WINDEX_SIMPERF` overrides.
const DEFAULT_SIMPERF_PATH: &str = "BENCH_simperf.json";

/// Wall-clock seconds one serial baseline-matrix run took on the engine
/// before the batched-issue/flat-array rework (same machine class as the
/// committed reference; recorded for the speedup line in reports).
const PRE_REWORK_MATRIX_SECONDS: f64 = 0.5972;

/// The `BENCH_simperf.json` payload.
#[derive(Debug, Clone, Serialize)]
struct Simperf {
    schema: u32,
    jobs: usize,
    reps: usize,
    /// Simulated memory-system accesses per matrix run (L1 + TLB lookups);
    /// deterministic, identical for every job count.
    accesses: u64,
    /// Best-of-`reps` wall seconds for one matrix run.
    best_wall_seconds: f64,
    /// The gated metric.
    accesses_per_second: f64,
    /// Matrix wall seconds of the pre-rework serial engine (reference).
    pre_rework_matrix_seconds: f64,
    /// `pre_rework_matrix_seconds / best_wall_seconds`.
    speedup_vs_pre_rework: f64,
}

fn measure(jobs: usize) -> Simperf {
    let mut best = f64::INFINITY;
    let mut accesses = 0u64;
    for _ in 0..REPS {
        let started = std::time::Instant::now();
        let (_, a) = baseline::compute_counted(jobs);
        let wall = started.elapsed().as_secs_f64();
        best = best.min(wall);
        accesses = a;
    }
    Simperf {
        schema: SCHEMA_VERSION,
        jobs,
        reps: REPS,
        accesses,
        best_wall_seconds: best,
        accesses_per_second: accesses as f64 / best,
        pre_rework_matrix_seconds: PRE_REWORK_MATRIX_SECONDS,
        speedup_vs_pre_rework: PRE_REWORK_MATRIX_SECONDS / best,
    }
}

/// Read the committed reference's accesses-per-second, if a file exists.
fn committed_accesses_per_second(path: &str) -> Result<Option<f64>, String> {
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(_) => return Ok(None),
    };
    let root: serde_json::Value =
        serde_json::from_str(&text).map_err(|e| format!("'{path}' is not JSON: {e}"))?;
    root.get("accesses_per_second")
        .and_then(|v| v.as_f64())
        .map(Some)
        .ok_or_else(|| format!("'{path}' has no numeric 'accesses_per_second'"))
}

/// The `simperf` target. `Err` (→ nonzero exit) when engine throughput
/// regressed more than 20 % against the committed reference.
pub fn simperf(cfg: &ExpConfig) -> Result<Experiment, String> {
    let fresh = measure(cfg.jobs);

    let path = std::env::var("WINDEX_SIMPERF").unwrap_or_else(|_| DEFAULT_SIMPERF_PATH.to_string());
    let committed = committed_accesses_per_second(&path)?;
    let gate_note = match committed {
        None => format!("no committed reference at '{path}'; gate skipped (recording run)"),
        Some(c) => {
            if fresh.accesses_per_second < REGRESSION_FLOOR * c {
                return Err(format!(
                    "simulator throughput regression: {:.0} accesses/sec is below {:.0}% of \
                     the committed {:.0} (from '{path}')",
                    fresh.accesses_per_second,
                    REGRESSION_FLOOR * 100.0,
                    c
                ));
            }
            format!(
                "gate: fresh {:.2e} accesses/sec vs committed {:.2e} (floor {:.0}%) — ok",
                fresh.accesses_per_second,
                c,
                REGRESSION_FLOOR * 100.0
            )
        }
    };

    let out_path = cfg.out_dir.join("BENCH_simperf.json");
    let mut text = serde_json::to_string_pretty(&fresh).expect("simperf serializes");
    text.push('\n');
    let write =
        std::fs::create_dir_all(&cfg.out_dir).and_then(|()| std::fs::write(&out_path, text));
    if let Err(e) = write {
        eprintln!("warning: could not write {}: {e}", out_path.display());
    }

    Ok(Experiment {
        id: "simperf".into(),
        title: "Simulator throughput: simulated accesses per wall-clock second".into(),
        columns: vec![
            "jobs".into(),
            "accesses".into(),
            "best_wall_s".into(),
            "accesses_per_s".into(),
            "speedup_vs_pre_rework".into(),
        ],
        rows: vec![vec![
            json!(fresh.jobs),
            json!(fresh.accesses),
            num(fresh.best_wall_seconds),
            num(fresh.accesses_per_second),
            num(fresh.speedup_vs_pre_rework),
        ]],
        notes: vec![
            format!("best of {REPS} runs of the baseline seed matrix; accesses = L1 + TLB lookups"),
            format!(
                "pre-rework serial engine ran the matrix in {PRE_REWORK_MATRIX_SECONDS}s \
                 (reference for the speedup column)"
            ),
            gate_note,
            "also written as BENCH_simperf.json (machine-dependent: wall clock)".into(),
        ],
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measure_counts_work_and_time() {
        let m = measure(1);
        assert!(m.accesses > 0);
        assert!(m.best_wall_seconds > 0.0);
        assert!(m.accesses_per_second > 0.0);
        assert_eq!(m.schema, SCHEMA_VERSION);
    }

    #[test]
    fn accesses_are_job_count_independent() {
        let (_, a1) = baseline::compute_counted(1);
        let (_, a4) = baseline::compute_counted(4);
        assert_eq!(a1, a4, "simulated work must not depend on --jobs");
        assert!(a1 > 0);
    }

    #[test]
    fn committed_reference_parses_or_is_absent() {
        // Missing file → no gate.
        assert_eq!(
            committed_accesses_per_second("/nonexistent/simperf.json").unwrap(),
            None
        );
        // Malformed file → hard error, not a silent pass.
        let dir = std::env::temp_dir().join("windex-simperf-test");
        std::fs::create_dir_all(&dir).unwrap();
        let bad = dir.join("bad.json");
        std::fs::write(&bad, "{\"schema\": 1}\n").unwrap();
        let err = committed_accesses_per_second(bad.to_str().unwrap()).unwrap_err();
        assert!(err.contains("accesses_per_second"), "{err}");
    }
}
