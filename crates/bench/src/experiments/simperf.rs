//! The `simperf` target: measures the simulator's raw speed and gates it.
//!
//! Every other target reports *simulated* performance; this one reports
//! how fast the simulator itself chews through simulated work, on both
//! parallel axes:
//!
//! 1. **Engine axis** — the canonical baseline seed matrix, run a few
//!    times; the best wall-clock time (the least noisy estimator on a
//!    shared machine) is normalized by the total simulated memory-system
//!    accesses performed (L1 lookups plus TLB lookups — the unit of work
//!    of the engine's hot path).
//! 2. **Serve axis** — a fixed multi-tenant trace served tenant-parallel
//!    (one `Gpu` lane per tenant) at 1 worker thread and at
//!    `--serve-threads` workers. Both points are timed, and the two
//!    outcomes must serialize **byte-identically** — the run fails
//!    otherwise, making the determinism contract a gate, not a test-only
//!    property.
//!
//! The result is written as `BENCH_simperf.json`. When a committed copy
//! exists at the repo root (override with `WINDEX_SIMPERF`), the target
//! *fails* if the fresh accesses-per-second falls more than 20 % below the
//! committed number — the engine-speed analogue of the `regress` gate —
//! and the reported `speedup_vs_committed` is measured against that same
//! file, so the figure stays honest as the floor rises. A missing
//! committed file is a warning, not a failure, so the target stays usable
//! on machines that never recorded a reference point.
//!
//! Unlike `baseline`, the JSON here is machine-dependent by design: it
//! records wall-clock throughput, not simulated counters.

use crate::config::ExpConfig;
use crate::experiments::baseline;
use crate::output::{num, Experiment};
use serde::Serialize;
use serde_json::json;
use windex_serve::{generate_trace, serve_tenant_parallel, ServeConfig, TimedRequest, TraceConfig};
use windex_sim::{GpuSpec, Scale};
use windex_workload::{KeyDistribution, Relation};

/// Format-version marker.
pub(crate) const SCHEMA_VERSION: u32 = 2;

/// Repetitions per measured point; best-of is reported. Five (up from the
/// pre-memoization three) because generator/fit memoization makes the
/// first rep structurally slower than the rest — more reps let best-of
/// settle on a warm, quiet run.
const REPS: usize = 5;

/// Fail when fresh accesses/sec drops below this fraction of committed.
const REGRESSION_FLOOR: f64 = 0.80;

/// Where the committed reference lives unless `WINDEX_SIMPERF` overrides.
const DEFAULT_SIMPERF_PATH: &str = "BENCH_simperf.json";

/// Wall-clock seconds one serial baseline-matrix run took on the engine
/// before the PR 5 batched-issue/flat-array rework. Historical context
/// only — the gated speedup is measured against the *committed*
/// `BENCH_simperf.json`, which moves as floors rise; this figure does not.
const HISTORICAL_PRE_REWORK_MATRIX_SECONDS: f64 = 0.5972;

/// Serve-axis workload shape (fixed so recorded numbers are comparable).
const SERVE_TENANTS: u32 = 8;
const SERVE_REQUESTS: usize = 512;

/// The serve-axis measurement: tenant-parallel serving at 1 and N worker
/// threads over the same fixed trace, with the byte-identity of the two
/// outcomes enforced.
#[derive(Debug, Clone, Serialize)]
struct ServeAxis {
    /// Tenant lanes in the fixed trace.
    tenants: u32,
    /// Requests in the fixed trace.
    requests: usize,
    /// Probe keys across the trace.
    keys: usize,
    /// Worker threads at the parallel point (`--serve-threads`).
    threads: usize,
    /// Best-of-reps wall seconds at 1 worker thread.
    serial_wall_seconds: f64,
    /// Best-of-reps wall seconds at `threads` workers.
    parallel_wall_seconds: f64,
    /// `serial_wall_seconds / parallel_wall_seconds` (≈ 1 on one core —
    /// the axis buys wall time only where cores exist; determinism is the
    /// invariant being gated).
    parallel_speedup: f64,
    /// Keys served per wall second at the faster of the two points.
    keys_per_second: f64,
    /// Whether the 1-thread and N-thread outcomes serialized identically.
    /// Always `true` in a written report (a mismatch fails the run).
    byte_identical: bool,
}

/// The `BENCH_simperf.json` payload.
#[derive(Debug, Clone, Serialize)]
struct Simperf {
    schema: u32,
    jobs: usize,
    reps: usize,
    /// Simulated memory-system accesses per matrix run (L1 + TLB lookups);
    /// deterministic, identical for every job count.
    accesses: u64,
    /// Best-of-`reps` wall seconds for one matrix run.
    best_wall_seconds: f64,
    /// The gated metric.
    accesses_per_second: f64,
    /// The committed reference this run was gated against (absent when no
    /// committed file existed — a recording run).
    committed_accesses_per_second: Option<f64>,
    /// `accesses_per_second / committed_accesses_per_second`; the honest
    /// speedup figure, re-based every time the committed floor rises.
    speedup_vs_committed: Option<f64>,
    /// Matrix wall seconds of the pre-PR 5 scalar engine. Historical
    /// context only; not the basis of any derived figure.
    historical_pre_rework_matrix_seconds: f64,
    /// The tenant-parallel serving measurement.
    serve: ServeAxis,
}

fn measure(jobs: usize) -> (u64, f64) {
    let mut best = f64::INFINITY;
    let mut accesses = 0u64;
    for _ in 0..REPS {
        let started = std::time::Instant::now();
        let (_, a) = baseline::compute_counted(jobs);
        let wall = started.elapsed().as_secs_f64();
        best = best.min(wall);
        accesses = a;
    }
    (accesses, best)
}

/// The serve axis's fixed workload: one relation, one multi-tenant trace.
fn serve_workload() -> (Relation, Vec<TimedRequest>) {
    let r = Relation::unique_sorted(1 << 16, KeyDistribution::SparseUniform, 7);
    let trace = generate_trace(
        &TraceConfig {
            seed: 7,
            tenants: SERVE_TENANTS,
            requests: SERVE_REQUESTS,
            min_keys: 32,
            max_keys: 256,
            offered_load_rps: 20_000.0,
            ..TraceConfig::default()
        },
        &r,
    );
    (r, trace)
}

/// Measure tenant-parallel serving at 1 and `threads` workers and enforce
/// the byte-identity of the two outcomes.
fn measure_serve(threads: usize) -> Result<ServeAxis, String> {
    let (r, trace) = serve_workload();
    let keys: usize = trace.iter().map(|t| t.request.keys.len()).sum();
    let spec = GpuSpec::v100_nvlink2(Scale::PAPER);
    let cfg = ServeConfig::default();
    let mut walls = [f64::INFINITY; 2];
    let mut payloads: [Option<String>; 2] = [None, None];
    for (slot, workers) in [(0usize, 1usize), (1, threads)] {
        for _ in 0..REPS {
            let started = std::time::Instant::now();
            let out = serve_tenant_parallel(&spec, cfg, &r, &trace, workers, None)
                .map_err(|e| format!("serve axis failed at {workers} threads: {e}"))?;
            walls[slot] = walls[slot].min(started.elapsed().as_secs_f64());
            payloads[slot] = Some(serde_json::to_string(&out).expect("outcome serializes"));
        }
    }
    let byte_identical = payloads[0] == payloads[1];
    if !byte_identical {
        return Err(format!(
            "tenant-parallel serving diverged between 1 and {threads} worker threads \
             (the outcome must be byte-identical for any thread count)"
        ));
    }
    Ok(ServeAxis {
        tenants: SERVE_TENANTS,
        requests: SERVE_REQUESTS,
        keys,
        threads,
        serial_wall_seconds: walls[0],
        parallel_wall_seconds: walls[1],
        parallel_speedup: walls[0] / walls[1],
        keys_per_second: keys as f64 / walls[0].min(walls[1]),
        byte_identical,
    })
}

/// Read the committed reference's accesses-per-second, if a file exists.
fn committed_accesses_per_second(path: &str) -> Result<Option<f64>, String> {
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(_) => return Ok(None),
    };
    let root: serde_json::Value =
        serde_json::from_str(&text).map_err(|e| format!("'{path}' is not JSON: {e}"))?;
    root.get("accesses_per_second")
        .and_then(|v| v.as_f64())
        .map(Some)
        .ok_or_else(|| format!("'{path}' has no numeric 'accesses_per_second'"))
}

/// The `simperf` target. `Err` (→ nonzero exit) when engine throughput
/// regressed more than 20 % against the committed reference, or when the
/// tenant-parallel serve outcomes diverge across thread counts.
pub fn simperf(cfg: &ExpConfig) -> Result<Experiment, String> {
    let (accesses, best_wall) = measure(cfg.jobs);
    let accesses_per_second = accesses as f64 / best_wall;
    let serve = measure_serve(cfg.serve_threads)?;

    let path = std::env::var("WINDEX_SIMPERF").unwrap_or_else(|_| DEFAULT_SIMPERF_PATH.to_string());
    let committed = committed_accesses_per_second(&path)?;
    let gate_note = match committed {
        None => format!("no committed reference at '{path}'; gate skipped (recording run)"),
        Some(c) => {
            if accesses_per_second < REGRESSION_FLOOR * c {
                return Err(format!(
                    "simulator throughput regression: {:.0} accesses/sec is below {:.0}% of \
                     the committed {:.0} (from '{path}')",
                    accesses_per_second,
                    REGRESSION_FLOOR * 100.0,
                    c
                ));
            }
            format!(
                "gate: fresh {:.2e} accesses/sec vs committed {:.2e} (floor {:.0}%) — ok",
                accesses_per_second,
                c,
                REGRESSION_FLOOR * 100.0
            )
        }
    };

    let fresh = Simperf {
        schema: SCHEMA_VERSION,
        jobs: cfg.jobs,
        reps: REPS,
        accesses,
        best_wall_seconds: best_wall,
        accesses_per_second,
        committed_accesses_per_second: committed,
        speedup_vs_committed: committed.map(|c| accesses_per_second / c),
        historical_pre_rework_matrix_seconds: HISTORICAL_PRE_REWORK_MATRIX_SECONDS,
        serve,
    };

    let out_path = cfg.out_dir.join("BENCH_simperf.json");
    let mut text = serde_json::to_string_pretty(&fresh).expect("simperf serializes");
    text.push('\n');
    let write =
        std::fs::create_dir_all(&cfg.out_dir).and_then(|()| std::fs::write(&out_path, text));
    if let Err(e) = write {
        eprintln!("warning: could not write {}: {e}", out_path.display());
    }

    Ok(Experiment {
        id: "simperf".into(),
        title: "Simulator throughput: simulated accesses per wall-clock second".into(),
        columns: vec![
            "jobs".into(),
            "accesses".into(),
            "best_wall_s".into(),
            "accesses_per_s".into(),
            "speedup_vs_committed".into(),
            "serve_keys_per_s".into(),
            "serve_par_speedup".into(),
        ],
        rows: vec![vec![
            json!(fresh.jobs),
            json!(fresh.accesses),
            num(fresh.best_wall_seconds),
            num(fresh.accesses_per_second),
            fresh.speedup_vs_committed.map_or(json!(null), num),
            num(fresh.serve.keys_per_second),
            num(fresh.serve.parallel_speedup),
        ]],
        notes: vec![
            format!("best of {REPS} runs of the baseline seed matrix; accesses = L1 + TLB lookups"),
            format!(
                "serve axis: {} requests / {} tenants served tenant-parallel at 1 vs {} \
                 threads; outcomes byte-identical (enforced)",
                fresh.serve.requests, fresh.serve.tenants, fresh.serve.threads
            ),
            format!(
                "historical: the pre-rework serial engine ran the matrix in \
                 {HISTORICAL_PRE_REWORK_MATRIX_SECONDS}s (context only; speedup is vs committed)"
            ),
            gate_note,
            "also written as BENCH_simperf.json (machine-dependent: wall clock)".into(),
        ],
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measure_counts_work_and_time() {
        let (accesses, best) = measure(1);
        assert!(accesses > 0);
        assert!(best > 0.0);
    }

    #[test]
    fn accesses_are_job_count_independent() {
        let (_, a1) = baseline::compute_counted(1);
        let (_, a4) = baseline::compute_counted(4);
        assert_eq!(a1, a4, "simulated work must not depend on --jobs");
        assert!(a1 > 0);
    }

    #[test]
    fn serve_axis_measures_and_enforces_identity() {
        let axis = measure_serve(2).unwrap();
        assert!(axis.byte_identical);
        assert!(axis.serial_wall_seconds > 0.0 && axis.parallel_wall_seconds > 0.0);
        assert!(axis.keys > 0);
        assert_eq!(axis.requests, SERVE_REQUESTS);
    }

    #[test]
    fn committed_reference_parses_or_is_absent() {
        // Missing file → no gate.
        assert_eq!(
            committed_accesses_per_second("/nonexistent/simperf.json").unwrap(),
            None
        );
        // Malformed file → hard error, not a silent pass.
        let dir = std::env::temp_dir().join("windex-simperf-test");
        std::fs::create_dir_all(&dir).unwrap();
        let bad = dir.join("bad.json");
        std::fs::write(&bad, "{\"schema\": 1}\n").unwrap();
        let err = committed_accesses_per_second(bad.to_str().unwrap()).unwrap_err();
        assert!(err.contains("accesses_per_second"), "{err}");
    }
}
