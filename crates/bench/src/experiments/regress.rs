//! The `regress` target: a CI gate that re-runs the baseline seed matrix
//! and diffs it against the committed `BENCH_baseline.json`.
//!
//! The baseline target records the trajectory; this target *enforces* it.
//! Every (strategy, R size) point is recomputed and compared metric by
//! metric against the committed file, with per-metric tolerance bands:
//!
//! - **exact**: `windows`, `result_tuples`, `retries` — these are discrete
//!   outcomes of a deterministic simulator; any drift is a behavior change;
//! - **relative 2%**: `queries_per_second`, `translations_per_lookup`,
//!   `tlb_misses`, `ic_bytes_total` — deterministic too, but the band
//!   absorbs benign cost-model refactors and float-rounding churn;
//! - **absolute 0.02**: phase shares (they are fractions of a total).
//!
//! Any violation fails the target (nonzero exit), printing every offending
//! metric with its committed and fresh values, so a perf regression — or an
//! *unacknowledged improvement* — cannot land silently. Intentional changes
//! regenerate the file with `experiments baseline` and commit the diff.
//!
//! The committed file is looked up at `BENCH_baseline.json` (the repo
//! root when run from there), overridable via `WINDEX_BASELINE`.

use crate::config::ExpConfig;
use crate::experiments::baseline::{self, Baseline, BaselineEntry};
use crate::output::{num, num6, Experiment};
use serde_json::{json, Value};

/// Relative tolerance for throughput-like metrics.
const REL_TOL: f64 = 0.02;

/// Absolute tolerance for phase shares.
const SHARE_TOL: f64 = 0.02;

/// Where the committed baseline lives unless `WINDEX_BASELINE` overrides.
const DEFAULT_BASELINE_PATH: &str = "BENCH_baseline.json";

/// One committed baseline entry, decoded from JSON.
#[derive(Debug)]
struct CommittedEntry {
    strategy: String,
    r_gib: f64,
    queries_per_second: f64,
    translations_per_lookup: f64,
    share_partition: f64,
    share_lookup: f64,
    share_other: f64,
    windows: u64,
    result_tuples: u64,
    tlb_misses: u64,
    ic_bytes_total: u64,
    retries: u64,
}

fn field<'v>(entry: &'v Value, key: &str) -> Result<&'v Value, String> {
    entry
        .get(key)
        .ok_or_else(|| format!("baseline entry missing field '{key}'"))
}

fn f64_field(entry: &Value, key: &str) -> Result<f64, String> {
    field(entry, key)?
        .as_f64()
        .ok_or_else(|| format!("baseline field '{key}' is not a number"))
}

fn u64_field(entry: &Value, key: &str) -> Result<u64, String> {
    field(entry, key)?
        .as_u64()
        .ok_or_else(|| format!("baseline field '{key}' is not an unsigned integer"))
}

fn decode_entry(entry: &Value) -> Result<CommittedEntry, String> {
    Ok(CommittedEntry {
        strategy: field(entry, "strategy")?
            .as_str()
            .ok_or("baseline field 'strategy' is not a string")?
            .to_string(),
        r_gib: f64_field(entry, "r_gib")?,
        queries_per_second: f64_field(entry, "queries_per_second")?,
        translations_per_lookup: f64_field(entry, "translations_per_lookup")?,
        share_partition: f64_field(entry, "share_partition")?,
        share_lookup: f64_field(entry, "share_lookup")?,
        share_other: f64_field(entry, "share_other")?,
        windows: u64_field(entry, "windows")?,
        result_tuples: u64_field(entry, "result_tuples")?,
        tlb_misses: u64_field(entry, "tlb_misses")?,
        ic_bytes_total: u64_field(entry, "ic_bytes_total")?,
        retries: u64_field(entry, "retries")?,
    })
}

/// Parse the committed baseline file into decoded entries.
fn decode_baseline(text: &str) -> Result<Vec<CommittedEntry>, String> {
    let root = serde_json::from_str(text).map_err(|e| format!("baseline is not JSON: {e}"))?;
    let schema = u64_field(&root, "schema")?;
    if schema != u64::from(baseline::SCHEMA_VERSION) {
        return Err(format!(
            "baseline schema v{schema} != expected v{}; regenerate with `experiments baseline`",
            baseline::SCHEMA_VERSION
        ));
    }
    field(&root, "entries")?
        .as_array()
        .ok_or("baseline 'entries' is not an array")?
        .iter()
        .map(decode_entry)
        .collect()
}

/// Whether `fresh` is within `tol` of `committed`, relatively.
fn rel_close(fresh: f64, committed: f64, tol: f64) -> bool {
    if committed == 0.0 {
        fresh == 0.0
    } else {
        ((fresh - committed) / committed).abs() <= tol
    }
}

/// Compare one fresh entry against its committed counterpart; returns the
/// violated metrics as human-readable strings.
fn compare(fresh: &BaselineEntry, committed: &CommittedEntry) -> Vec<String> {
    let who = format!("{} @ {} GiB", fresh.strategy, fresh.r_gib);
    let mut out = Vec::new();
    for (metric, f, c) in [
        (
            "queries_per_second",
            fresh.queries_per_second,
            committed.queries_per_second,
        ),
        (
            "translations_per_lookup",
            fresh.translations_per_lookup,
            committed.translations_per_lookup,
        ),
        (
            "tlb_misses",
            fresh.tlb_misses as f64,
            committed.tlb_misses as f64,
        ),
        (
            "ic_bytes_total",
            fresh.ic_bytes_total as f64,
            committed.ic_bytes_total as f64,
        ),
    ] {
        if !rel_close(f, c, REL_TOL) {
            out.push(format!(
                "{who}: {metric} {c} -> {f} (|Δ| > {:.0}% relative)",
                REL_TOL * 100.0
            ));
        }
    }
    for (metric, f, c) in [
        (
            "share_partition",
            fresh.share_partition,
            committed.share_partition,
        ),
        ("share_lookup", fresh.share_lookup, committed.share_lookup),
        ("share_other", fresh.share_other, committed.share_other),
    ] {
        if (f - c).abs() > SHARE_TOL {
            out.push(format!(
                "{who}: {metric} {c} -> {f} (|Δ| > {SHARE_TOL} absolute)"
            ));
        }
    }
    for (metric, f, c) in [
        ("windows", fresh.windows as u64, committed.windows),
        (
            "result_tuples",
            fresh.result_tuples as u64,
            committed.result_tuples,
        ),
        ("retries", fresh.retries, committed.retries),
    ] {
        if f != c {
            out.push(format!("{who}: {metric} {c} -> {f} (exact-match metric)"));
        }
    }
    out
}

/// Diff a freshly computed baseline against decoded committed entries.
/// Returns `(rows, violations)`: one table row per fresh entry, and every
/// tolerance violation (including matrix mismatches).
fn diff(fresh: &Baseline, committed: &[CommittedEntry]) -> (Vec<Vec<Value>>, Vec<String>) {
    let mut rows = Vec::new();
    let mut violations = Vec::new();
    for entry in &fresh.entries {
        let found = committed
            .iter()
            .find(|c| c.strategy == entry.strategy && c.r_gib == entry.r_gib);
        let (status, qps_committed) = match found {
            None => {
                violations.push(format!(
                    "{} @ {} GiB: not in committed baseline (matrix changed? \
                     regenerate with `experiments baseline`)",
                    entry.strategy, entry.r_gib
                ));
                ("missing".to_string(), 0.0)
            }
            Some(c) => {
                let v = compare(entry, c);
                let status = if v.is_empty() {
                    "ok".to_string()
                } else {
                    format!("FAIL ({})", v.len())
                };
                violations.extend(v);
                (status, c.queries_per_second)
            }
        };
        rows.push(vec![
            json!(entry.strategy.clone()),
            num(entry.r_gib),
            num6(qps_committed),
            num6(entry.queries_per_second),
            json!(status),
        ]);
    }
    if committed.len() != fresh.entries.len() {
        violations.push(format!(
            "committed baseline has {} entries, fresh matrix has {} \
             (regenerate with `experiments baseline`)",
            committed.len(),
            fresh.entries.len()
        ));
    }
    (rows, violations)
}

/// The `regress` target. `Err` (→ nonzero exit) on any tolerance
/// violation, with every offending metric listed.
pub fn regress(cfg: &ExpConfig) -> Result<Experiment, String> {
    let path =
        std::env::var("WINDEX_BASELINE").unwrap_or_else(|_| DEFAULT_BASELINE_PATH.to_string());
    let text = std::fs::read_to_string(&path)
        .map_err(|e| format!("cannot read committed baseline '{path}': {e}"))?;
    let committed = decode_baseline(&text)?;
    let fresh = baseline::compute_with_jobs(cfg.jobs);
    let (rows, violations) = diff(&fresh, &committed);
    if !violations.is_empty() {
        return Err(format!(
            "baseline regression against '{path}' ({} violation(s)):\n  {}",
            violations.len(),
            violations.join("\n  ")
        ));
    }
    Ok(Experiment {
        id: "regress".into(),
        title: format!("Regression gate: fresh seed matrix vs {path}"),
        columns: vec![
            "strategy".into(),
            "r_gib".into(),
            "qps_committed".into(),
            "qps_fresh".into(),
            "status".into(),
        ],
        rows,
        notes: vec![
            format!(
                "tolerances: {:.0}% relative (qps, translations, tlb_misses, ic_bytes), \
                 {SHARE_TOL} absolute (phase shares), exact (windows, result_tuples, retries)",
                REL_TOL * 100.0
            ),
            "all points within tolerance".into(),
        ],
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::OnceLock;

    /// The seed matrix is expensive; compute it once for the whole module.
    fn fresh() -> &'static Baseline {
        static FRESH: OnceLock<Baseline> = OnceLock::new();
        FRESH.get_or_init(baseline::compute)
    }

    /// The canonical serialization of the cached matrix (what the
    /// committed `BENCH_baseline.json` holds).
    fn committed_text() -> String {
        let mut text = serde_json::to_string_pretty(fresh()).unwrap();
        text.push('\n');
        text
    }

    #[test]
    fn fresh_baseline_passes_against_its_own_serialization() {
        let committed = decode_baseline(&committed_text()).unwrap();
        let (rows, violations) = diff(fresh(), &committed);
        assert!(violations.is_empty(), "{violations:?}");
        assert_eq!(rows.len(), fresh().entries.len());
        assert!(rows.iter().all(|r| r[4] == json!("ok")));
    }

    #[test]
    fn perturbed_metrics_are_caught() {
        let mut committed = decode_baseline(&committed_text()).unwrap();
        committed[0].queries_per_second *= 1.5; // outside the 2% band
        committed[1].windows += 1; // exact-match metric
        committed[2].share_lookup += 0.5; // outside the absolute band
        let (_, violations) = diff(fresh(), &committed);
        assert_eq!(violations.len(), 3, "{violations:?}");
        assert!(violations[0].contains("queries_per_second"));
        assert!(violations[1].contains("windows"));
        assert!(violations[2].contains("share_lookup"));
    }

    #[test]
    fn within_band_drift_passes_but_matrix_changes_fail() {
        let mut committed = decode_baseline(&committed_text()).unwrap();
        committed[0].queries_per_second *= 1.01; // inside the 2% band
        let (_, violations) = diff(fresh(), &committed);
        assert!(violations.is_empty(), "{violations:?}");

        let mut shrunk = decode_baseline(&committed_text()).unwrap();
        shrunk.pop();
        let (_, violations) = diff(fresh(), &shrunk);
        assert_eq!(violations.len(), 2, "{violations:?}"); // missing point + count
    }

    #[test]
    fn schema_mismatch_is_rejected() {
        let text = committed_text().replace("\"schema\": 1", "\"schema\": 999");
        assert_ne!(text, committed_text(), "replacement must hit");
        let err = decode_baseline(&text).unwrap_err();
        assert!(err.contains("schema"), "{err}");
    }
}
