//! Fig. 1 (motivation): transfer volume of the access paths.
//!
//! "For selective predicates, a hash join transfers more data than
//! necessary across the interconnect. In contrast, index joins reduce the
//! data transfer volume." This experiment makes the motivating figure
//! quantitative: a range predicate of varying selectivity is answered by
//! (a) a full table scan with a GPU-side filter and (b) an index range
//! scan that streams only the matching contiguous run.

use super::{make_r, v100};
use crate::config::ExpConfig;
use crate::output::{num, Experiment};
use serde_json::json;
use std::rc::Rc;
use windex_core::prelude::*;
use windex_core::strategy::{BuiltIndex, IndexConfigs};
use windex_join::{full_scan_filter, index_range_scan, ResultSink};
use windex_sim::CostModel;

/// R size for the range-scan study (kept moderate: a 100 % selective range
/// materializes the whole relation).
const RANGE_R_GIB: f64 = 32.0;

/// Run the transfer-volume comparison.
pub fn fig1(cfg: &ExpConfig) -> Experiment {
    let mut spec = v100(cfg);
    let r = make_r(cfg, RANGE_R_GIB);
    // A 100 %-selective range materializes the whole relation as
    // (position, key) pairs. This motivating experiment studies transfer
    // volume, not result placement, so give the device enough HBM that the
    // sink never distorts the measurement (the capacity-constrained path
    // is exercised by the query engine's degradation ladder instead).
    let sink_bytes = (r.len() as u64 * 16).div_ceil(spec.page_bytes) * spec.page_bytes;
    spec.hbm_bytes = spec.hbm_bytes.max(sink_bytes + spec.page_bytes);
    let max_key = r.max_key().unwrap();

    let mut rows = Vec::new();
    for sel_pct in [0.1f64, 1.0, 10.0, 50.0, 100.0] {
        // Dense keys: a key range of `sel` of the domain selects `sel` of
        // the tuples.
        let hi = ((max_key as f64) * sel_pct / 100.0) as u64;

        let mut gpu = Gpu::new(spec.clone());
        let col = Rc::new(gpu.alloc_host_from_vec(r.keys().to_vec()));
        let idx = BuiltIndex::build(
            &mut gpu,
            IndexKind::RadixSpline,
            &col,
            &IndexConfigs::default(),
        );
        let cm = CostModel::new(gpu.spec());

        let mut sink = ResultSink::with_capacity(&mut gpu, r.len(), MemLocation::Gpu).unwrap();
        gpu.reset_memory_system();
        let before = gpu.snapshot();
        let full = full_scan_filter(&mut gpu, &col, 0, hi, &mut sink).unwrap();
        let d_full = gpu.snapshot() - before;
        sink.free(&mut gpu);

        let mut sink = ResultSink::with_capacity(&mut gpu, r.len(), MemLocation::Gpu).unwrap();
        gpu.reset_memory_system();
        let before = gpu.snapshot();
        let index = index_range_scan(&mut gpu, idx.as_dyn(), &col, 0, hi, &mut sink).unwrap();
        let d_index = gpu.snapshot() - before;
        sink.free(&mut gpu);
        assert_eq!(full, index, "operators must agree");

        let gib = |b: u64| cm.spec().scale.paper_bytes(b) as f64 / (1u64 << 30) as f64;
        let full_gib = gib(d_full.ic_bytes_streamed + d_full.ic_bytes_random);
        let index_gib = gib(d_index.ic_bytes_streamed + d_index.ic_bytes_random);
        rows.push(vec![
            json!(sel_pct),
            json!(full.matches),
            num(full_gib),
            num(index_gib),
            num(full_gib / index_gib.max(1e-9)),
            num(cm.estimate(&d_full, true).total_s),
            num(cm.estimate(&d_index, true).total_s),
        ]);
    }

    Experiment {
        id: "fig1".into(),
        title: format!("Transfer volume: full scan vs index range scan (R = {RANGE_R_GIB:.0} GiB)"),
        columns: vec![
            "selectivity (%)".into(),
            "matches".into(),
            "full-scan transfer (GiB)".into(),
            "index-scan transfer (GiB)".into(),
            "reduction".into(),
            "full-scan time (s)".into(),
            "index-scan time (s)".into(),
        ],
        rows,
        notes: vec![
            "Fig. 1's motivation made quantitative: the scan always moves \
             |R| while the index moves only the matching run (plus a few \
             search cachelines), so the reduction is ~1/selectivity."
                .into(),
        ],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn index_scan_reduction_tracks_selectivity() {
        let mut cfg = ExpConfig::quick();
        cfg.s_tuples = 1 << 10;
        let exp = fig1(&cfg);
        // 1 % selectivity row: reduction near 100x.
        let red = exp.rows[1][4].as_f64().unwrap();
        assert!((50.0..200.0).contains(&red), "reduction {red}");
        // 100 % selectivity row: no advantage (within noise).
        let red_full = exp.rows[4][4].as_f64().unwrap();
        assert!((0.8..1.2).contains(&red_full), "reduction {red_full}");
    }
}
