//! The `baseline` target: a deterministic performance baseline for
//! regression trajectories.
//!
//! Runs a *fixed* seed matrix — independent of `--quick`, so the output is
//! canonical — and writes `BENCH_baseline.json` next to the usual
//! experiment files: Q/s, translations per lookup, and per-phase time
//! shares for every (strategy, R size) point. The simulator is
//! deterministic and the JSON writer formats floats deterministically, so
//! the same toolchain produces a byte-identical file on every run — CI
//! runs the target twice and byte-diffs the outputs, and future PRs diff
//! their baseline against this one to see exactly which phase moved.

use crate::config::ExpConfig;
use crate::output::{num, num6, Experiment};
use serde::Serialize;
use serde_json::json;
use windex_core::prelude::*;
use windex_sim::phase;

/// Format-version marker for trajectory tooling.
pub(crate) const SCHEMA_VERSION: u32 = 1;

/// Fixed probe-side size of the baseline matrix (simulated tuples).
const S_TUPLES: usize = 1 << 13;

/// Fixed indexed-relation sizes of the baseline matrix, in paper GiB.
const R_GIB: [f64; 2] = [1.0, 8.0];

/// Fixed window capacity for the windowed strategy (the paper's 32 MiB
/// window at 1024× scale).
const WINDOW_TUPLES: usize = 1 << 12;

/// The strategies the baseline tracks, in report order.
fn strategies() -> Vec<JoinStrategy> {
    vec![
        JoinStrategy::HashJoin,
        JoinStrategy::Inlj {
            index: IndexKind::BinarySearch,
        },
        JoinStrategy::Inlj {
            index: IndexKind::RadixSpline,
        },
        JoinStrategy::PartitionedInlj {
            index: IndexKind::RadixSpline,
        },
        JoinStrategy::WindowedInlj {
            index: IndexKind::Harmonia,
            window_tuples: WINDOW_TUPLES,
        },
        JoinStrategy::WindowedInlj {
            index: IndexKind::RadixSpline,
            window_tuples: WINDOW_TUPLES,
        },
    ]
}

/// One (strategy, R size) point of the baseline.
#[derive(Debug, Clone, Serialize)]
pub(crate) struct BaselineEntry {
    pub(crate) strategy: String,
    pub(crate) r_gib: f64,
    pub(crate) queries_per_second: f64,
    pub(crate) translations_per_lookup: f64,
    pub(crate) share_partition: f64,
    pub(crate) share_lookup: f64,
    pub(crate) share_other: f64,
    pub(crate) windows: usize,
    pub(crate) result_tuples: usize,
    pub(crate) tlb_misses: u64,
    pub(crate) ic_bytes_total: u64,
    pub(crate) retries: u64,
}

/// The whole baseline file.
#[derive(Debug, Clone, Serialize)]
pub(crate) struct Baseline {
    pub(crate) schema: u32,
    pub(crate) scale_factor: u64,
    pub(crate) s_tuples: usize,
    pub(crate) window_tuples: usize,
    pub(crate) entries: Vec<BaselineEntry>,
}

/// Round to 6 decimals so the recorded trajectory is stable against
/// last-bit float jitter from benign refactors.
fn r6(v: f64) -> f64 {
    (v * 1e6).round() / 1e6
}

/// Run one matrix cell on a fresh `Gpu`. Cells are independent
/// deterministic simulations, which is what makes the parallel harness
/// safe: any scheduling of cells produces the same per-cell result.
/// Also returns the cell's simulated memory-system accesses (L1 + TLB
/// lookups), the work unit the `simperf` target normalizes by.
fn run_cell(spec: &GpuSpec, r: &Relation, s: &Relation, gib: f64, st: JoinStrategy) -> CellResult {
    let mut gpu = Gpu::new(spec.clone());
    let rep = QueryExecutor::new()
        .run(&mut gpu, r, s, st)
        .expect("baseline query must succeed");
    let c = &rep.counters;
    let accesses = c.l1_hits + c.l1_misses + c.tlb_hits + c.tlb_misses;
    let entry = BaselineEntry {
        strategy: rep.strategy.clone(),
        r_gib: gib,
        queries_per_second: r6(rep.queries_per_second()),
        translations_per_lookup: r6(rep.translations_per_lookup()),
        share_partition: r6(rep.phases.share(phase::PARTITION)),
        share_lookup: r6(rep.phases.share(phase::LOOKUP)),
        share_other: r6(rep.phases.share(phase::OTHER)),
        windows: rep.windows,
        result_tuples: rep.result_tuples,
        tlb_misses: rep.counters.tlb_misses,
        ic_bytes_total: rep.counters.ic_bytes_total(),
        retries: rep.retries,
    };
    (entry, accesses)
}

type CellResult = (BaselineEntry, u64);

/// Scatter the cells over `jobs` scoped worker threads (atomic work
/// stealing) and merge the results back in fixed cell order. Workers only
/// decide *when* a cell runs, never *what* it computes, so the merged
/// vector is identical for every job count.
fn run_cells_parallel(
    jobs: usize,
    spec: &GpuSpec,
    inputs: &[(f64, Relation, Relation)],
    cells: &[(usize, JoinStrategy)],
) -> Vec<CellResult> {
    use std::sync::atomic::{AtomicUsize, Ordering};
    let next = AtomicUsize::new(0);
    let mut slots: Vec<Option<CellResult>> = vec![None; cells.len()];
    std::thread::scope(|scope| {
        let workers: Vec<_> = (0..jobs)
            .map(|_| {
                scope.spawn(|| {
                    let mut mine = Vec::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= cells.len() {
                            break;
                        }
                        let (input, st) = cells[i];
                        let (gib, r, s) = &inputs[input];
                        mine.push((i, run_cell(spec, r, s, *gib, st)));
                    }
                    mine
                })
            })
            .collect();
        for w in workers {
            for (i, result) in w.join().expect("baseline worker panicked") {
                slots[i] = Some(result);
            }
        }
    });
    slots
        .into_iter()
        .map(|s| s.expect("every cell was claimed by a worker"))
        .collect()
}

/// Compute the seed matrix with `jobs` workers, also returning the total
/// simulated memory-system accesses (for `simperf`).
pub(crate) fn compute_counted(jobs: usize) -> (Baseline, u64) {
    let scale = Scale::PAPER;
    let spec = GpuSpec::v100_nvlink2(scale);
    // Relations are deterministic functions of their seeds; build each R
    // size once and share it read-only across that size's cells.
    let inputs: Vec<(f64, Relation, Relation)> = R_GIB
        .iter()
        .map(|&gib| {
            let r = Relation::unique_sorted(
                scale.sim_tuples_for_paper_gib(gib),
                KeyDistribution::Dense,
                42,
            );
            let s = Relation::foreign_keys_uniform(&r, S_TUPLES, 7);
            (gib, r, s)
        })
        .collect();
    let cells: Vec<(usize, JoinStrategy)> = (0..inputs.len())
        .flat_map(|input| strategies().into_iter().map(move |st| (input, st)))
        .collect();
    let results = if jobs <= 1 {
        cells
            .iter()
            .map(|&(input, st)| {
                let (gib, r, s) = &inputs[input];
                run_cell(&spec, r, s, *gib, st)
            })
            .collect()
    } else {
        run_cells_parallel(jobs, &spec, &inputs, &cells)
    };
    let accesses = results.iter().map(|(_, a)| a).sum();
    let entries = results.into_iter().map(|(e, _)| e).collect();
    (
        Baseline {
            schema: SCHEMA_VERSION,
            scale_factor: scale.factor,
            s_tuples: S_TUPLES,
            window_tuples: WINDOW_TUPLES,
            entries,
        },
        accesses,
    )
}

pub(crate) fn compute() -> Baseline {
    compute_counted(1).0
}

/// [`compute`] with a worker count; byte-identical output for any `jobs`.
pub(crate) fn compute_with_jobs(jobs: usize) -> Baseline {
    compute_counted(jobs).0
}

/// The canonical serialization of a computed matrix — what
/// `BENCH_baseline.json` contains, byte-for-byte.
fn to_json(data: &Baseline) -> String {
    let mut text = serde_json::to_string_pretty(data).expect("baseline serializes");
    text.push('\n');
    text
}

/// The canonical baseline serialization, computed serially.
pub fn baseline_json() -> String {
    to_json(&compute())
}

/// The `baseline` target: renders the matrix as an experiment table and
/// writes the canonical `BENCH_baseline.json` into `cfg.out_dir`.
pub fn baseline(cfg: &ExpConfig) -> Experiment {
    let data = compute_with_jobs(cfg.jobs);
    let path = cfg.out_dir.join("BENCH_baseline.json");
    let write =
        std::fs::create_dir_all(&cfg.out_dir).and_then(|()| std::fs::write(&path, to_json(&data)));
    if let Err(e) = write {
        eprintln!("warning: could not write {}: {e}", path.display());
    }
    let rows = data
        .entries
        .iter()
        .map(|e| {
            vec![
                json!(e.strategy.clone()),
                num(e.r_gib),
                num(e.queries_per_second),
                num6(e.translations_per_lookup),
                num(e.share_partition),
                num(e.share_lookup),
                num(e.share_other),
                json!(e.windows),
                json!(e.retries),
            ]
        })
        .collect();
    Experiment {
        id: "baseline".into(),
        title: "Perf baseline: Q/s, translations/lookup, per-phase shares (fixed matrix)".into(),
        columns: vec![
            "strategy".into(),
            "r_gib".into(),
            "qps".into(),
            "transl_per_lookup".into(),
            "share_partition".into(),
            "share_lookup".into(),
            "share_other".into(),
            "windows".into(),
            "retries".into(),
        ],
        rows,
        notes: vec![
            "fixed seed matrix, independent of --quick: canonical regression trajectory".into(),
            format!(
                "also written as BENCH_baseline.json (schema v{SCHEMA_VERSION}); \
                 same toolchain => byte-identical, enforced by CI"
            ),
        ],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn baseline_is_byte_deterministic() {
        assert_eq!(baseline_json(), baseline_json());
    }

    #[test]
    fn parallel_jobs_are_byte_identical_to_serial() {
        let serial = to_json(&compute_with_jobs(1));
        let parallel = to_json(&compute_with_jobs(4));
        assert_eq!(serial, parallel, "--jobs must not change the report");
    }

    #[test]
    fn baseline_matches_committed_file() {
        // The regression gate diffs with tolerance bands; this golden test
        // holds the canonical artifact to *byte* identity, so any engine
        // change that moves a counter — even inside the bands — must
        // regenerate BENCH_baseline.json deliberately.
        let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_baseline.json");
        let committed =
            std::fs::read_to_string(path).expect("committed BENCH_baseline.json at the repo root");
        assert_eq!(
            baseline_json(),
            committed,
            "fresh baseline differs from committed BENCH_baseline.json; \
             regenerate with `experiments baseline` if intentional"
        );
    }

    #[test]
    fn baseline_covers_the_matrix_with_sane_shares() {
        let data = compute();
        assert_eq!(data.entries.len(), R_GIB.len() * strategies().len());
        for e in &data.entries {
            assert!(e.queries_per_second > 0.0, "{}", e.strategy);
            assert_eq!(e.result_tuples, S_TUPLES, "{}", e.strategy);
            let share_sum = e.share_partition + e.share_lookup + e.share_other;
            assert!(
                share_sum > 0.99 && share_sum < 1.01,
                "{}: shares sum to {share_sum}",
                e.strategy
            );
            assert_eq!(e.retries, 0, "{}: baseline runs are fault-free", e.strategy);
        }
        // Windowed strategies decompose into partition + lookup; the
        // unpartitioned INLJ is all lookup.
        let windowed = data
            .entries
            .iter()
            .find(|e| e.strategy.starts_with("windowed-inlj"))
            .unwrap();
        assert!(windowed.share_partition > 0.0);
        assert!(windowed.share_lookup > 0.0);
        let inlj = data
            .entries
            .iter()
            .find(|e| e.strategy.starts_with("inlj"))
            .unwrap();
        assert!(
            inlj.share_lookup > 0.9,
            "inlj lookup share {}",
            inlj.share_lookup
        );
    }
}
