//! The `observe` target: one seeded, fully-instrumented run of the paper's
//! headline contrast, exported as loadable artifacts.
//!
//! Runs plain INLJ and windowed INLJ over a 64 paper-GiB relation — twice
//! the V100's 32-GiB TLB reach, so the plain probe phase thrashes — with a
//! bounded simulator trace enabled, then writes:
//!
//! - `trace_{inlj,windowed,serve}.json` — Chrome trace-event files
//!   (Perfetto / `chrome://tracing` load them directly);
//! - `heatmap_{tlb,l2}_{inlj,windowed}.{json,csv}` — time × set residency
//!   heatmaps from the recorded trace;
//! - `openmetrics.txt` — an OpenMetrics snapshot of a seeded serving run.
//!
//! Everything is a pure function of the fixed seeds, so every artifact is
//! byte-identical across runs (pinned by `tests/exporters.rs`).

use crate::config::ExpConfig;
use crate::export::{
    chrome_trace_json, cluster_request_chrome_trace, query_chrome_trace, server_chrome_trace,
};
use crate::output::{num6, Experiment};
use serde_json::json;
use std::path::Path;
use windex_core::prelude::*;
use windex_serve::prelude::{
    generate_trace, render_openmetrics, BatchPolicy, ClusterConfig, ClusterReport, ClusterServer,
    ClusterSpec, ServeConfig, Server, ServerReport, TraceConfig,
};
use windex_sim::{tlb_heatmap, Heatmap, InterconnectSpec, Trace};

/// Indexed-relation size, in paper GiB: 2× the V100's 32-GiB TLB reach,
/// so the unwindowed probe phase visibly thrashes.
const R_GIB: f64 = 64.0;

/// Probe keys (fixed, independent of `--quick`: the artifacts are
/// canonical, like the baseline).
const S_TUPLES: usize = 1 << 13;

/// Time buckets of the emitted heatmaps.
const BUCKETS: usize = 64;

/// One instrumented query: run `strategy` with a bounded ring trace and
/// return the report plus the recorded trace.
pub fn observed_query(strategy: JoinStrategy) -> (QueryReport, Trace, GpuSpec) {
    let scale = Scale::PAPER;
    let spec = GpuSpec::v100_nvlink2(scale);
    let r = Relation::unique_sorted(
        scale.sim_tuples_for_paper_gib(R_GIB),
        KeyDistribution::Dense,
        42,
    );
    let s = Relation::foreign_keys_uniform(&r, S_TUPLES, 7);
    let mut gpu = Gpu::new(spec.clone());
    gpu.start_bounded_trace();
    let report = QueryExecutor::new()
        .run(&mut gpu, &r, &s, strategy)
        .expect("observe query must succeed");
    let trace = gpu.stop_trace();
    (report, trace, spec)
}

/// The seeded serving run whose report feeds the OpenMetrics snapshot.
pub fn observed_server() -> ServerReport {
    let scale = Scale::PAPER;
    let r = Relation::unique_sorted(
        scale.sim_tuples_for_paper_gib(1.0),
        KeyDistribution::Dense,
        42,
    );
    let trace = generate_trace(
        &TraceConfig {
            seed: 7,
            tenants: 4,
            requests: 128,
            min_keys: 4,
            max_keys: 64,
            offered_load_rps: 10_000.0,
            deadline_s: None,
        },
        &r,
    );
    let mut gpu = Gpu::new(GpuSpec::v100_nvlink2(scale));
    let mut server = Server::new(
        &mut gpu,
        ServeConfig {
            policy: BatchPolicy::Shared {
                max_delay_s: 200e-6,
            },
            window_tuples: 1024,
            ..ServeConfig::default()
        },
        r,
    )
    .expect("observe server must construct");
    server
        .run(&mut gpu, &trace)
        .expect("observe serve trace must complete")
        .report
}

/// The seeded cluster run whose span trees feed the request-tracing
/// artifacts (flow-linked Perfetto export, tail query cards).
pub fn observed_cluster() -> ClusterReport {
    let scale = Scale::PAPER;
    let r = Relation::unique_sorted(
        scale.sim_tuples_for_paper_gib(1.0),
        KeyDistribution::Dense,
        42,
    );
    let trace = generate_trace(
        &TraceConfig {
            seed: 9,
            tenants: 4,
            requests: 96,
            min_keys: 32,
            max_keys: 256,
            offered_load_rps: 20_000.0,
            deadline_s: None,
        },
        &r,
    );
    let cfg = ClusterConfig {
        serve: ServeConfig::default(),
        cluster: ClusterSpec::sharded(
            4,
            windex_sim::GpuSpec::v100_nvlink2(scale),
            InterconnectSpec::nvlink4_peer(),
        ),
    };
    ClusterServer::new(cfg, r)
        .expect("observe cluster must construct")
        .run(&trace)
        .expect("observe cluster trace must complete")
        .report
}

/// The two contrasted strategies, with their artifact labels.
fn strategies() -> Vec<(&'static str, JoinStrategy)> {
    vec![
        (
            "inlj",
            JoinStrategy::Inlj {
                index: IndexKind::RadixSpline,
            },
        ),
        (
            "windowed",
            JoinStrategy::WindowedInlj {
                index: IndexKind::RadixSpline,
                window_tuples: 1 << 12,
            },
        ),
    ]
}

/// Serialize a heatmap as its canonical JSON bytes.
fn heatmap_json(hm: &Heatmap) -> String {
    let mut text = serde_json::to_string_pretty(hm).expect("heatmap serializes");
    text.push('\n');
    text
}

fn write_artifact(out_dir: &Path, name: &str, bytes: &str) {
    let path = out_dir.join(name);
    let write = std::fs::create_dir_all(out_dir).and_then(|()| std::fs::write(&path, bytes));
    if let Err(e) = write {
        eprintln!("warning: could not write {}: {e}", path.display());
    }
}

/// The `observe` target.
pub fn observe(cfg: &ExpConfig) -> Experiment {
    let mut rows = Vec::new();
    for (label, strategy) in strategies() {
        let (report, trace, spec) = observed_query(strategy);
        let hm_tlb = tlb_heatmap(&spec, &trace, BUCKETS);
        let hm_l2 = windex_sim::l2_heatmap(&spec, &trace, BUCKETS);
        write_artifact(
            &cfg.out_dir,
            &format!("trace_{label}.json"),
            &chrome_trace_json(&query_chrome_trace(&report, &trace)),
        );
        write_artifact(
            &cfg.out_dir,
            &format!("heatmap_tlb_{label}.json"),
            &heatmap_json(&hm_tlb),
        );
        write_artifact(
            &cfg.out_dir,
            &format!("heatmap_tlb_{label}.csv"),
            &hm_tlb.to_csv(),
        );
        write_artifact(
            &cfg.out_dir,
            &format!("heatmap_l2_{label}.json"),
            &heatmap_json(&hm_l2),
        );
        write_artifact(
            &cfg.out_dir,
            &format!("heatmap_l2_{label}.csv"),
            &hm_l2.to_csv(),
        );
        rows.push(vec![
            json!(label),
            json!(report.strategy.clone()),
            num6(hm_tlb.miss_rate()),
            num6(hm_l2.miss_rate()),
            json!(trace.recorded().events),
            json!(trace.dropped_events()),
            num6(report.queries_per_second()),
        ]);
    }

    let server_report = observed_server();
    write_artifact(
        &cfg.out_dir,
        "openmetrics.txt",
        &render_openmetrics(&server_report),
    );
    write_artifact(
        &cfg.out_dir,
        "trace_serve.json",
        &chrome_trace_json(&server_chrome_trace(&server_report)),
    );
    rows.push(vec![
        json!("serve"),
        json!(server_report.policy.clone()),
        num6(0.0),
        num6(0.0),
        json!(server_report.requests),
        json!(0u64),
        num6(server_report.completed_rps),
    ]);

    // Request tracing: the cluster run's span trees as a flow-linked
    // Perfetto export, the tail sampler's query cards as JSON, and the
    // slowest card rendered as text.
    let cluster_report = observed_cluster();
    write_artifact(
        &cfg.out_dir,
        "trace_requests.json",
        &chrome_trace_json(&cluster_request_chrome_trace(&cluster_report)),
    );
    let mut tail_json =
        serde_json::to_string_pretty(&cluster_report.tail).expect("tail serializes");
    tail_json.push('\n');
    write_artifact(&cfg.out_dir, "requests_tail.json", &tail_json);
    let cards: String = cluster_report
        .tail
        .slowest
        .iter()
        .map(|c| c.render())
        .collect();
    write_artifact(&cfg.out_dir, "query_cards.txt", &cards);
    rows.push(vec![
        json!("requests"),
        json!(format!(
            "cluster {}x {}",
            cluster_report.gpus, cluster_report.link
        )),
        num6(0.0),
        num6(0.0),
        json!(cluster_report.requests),
        json!(0u64),
        num6(cluster_report.completed_rps),
    ]);

    Experiment {
        id: "observe".into(),
        title: format!(
            "Observability export: {R_GIB:.0} paper-GiB run, Perfetto traces + residency heatmaps"
        ),
        columns: vec![
            "artifact".into(),
            "run".into(),
            "tlb_miss_rate".into(),
            "l2_miss_rate".into(),
            "recorded_events".into(),
            "dropped_events".into(),
            "qps_or_rps".into(),
        ],
        rows,
        notes: vec![
            "trace_*.json load in Perfetto / chrome://tracing; heatmap_*.csv is long-format \
             (bucket,set,accesses,misses,miss_rate)"
                .into(),
            "trace_requests.json links coordinator request spans to shard legs with flow \
             arrows; requests_tail.json / query_cards.txt hold the tail sampler's cards"
                .into(),
            "fixed seeds, independent of --quick: artifacts are byte-identical across runs".into(),
            format!(
                "{R_GIB:.0} paper GiB is 2x the V100's 32-GiB TLB reach: the plain INLJ heatmap \
                 shows the thrash wall, the windowed one shows restored locality"
            ),
        ],
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use windex_sim::l2_heatmap;

    #[test]
    fn heatmap_distinguishes_thrash_from_windowed_locality() {
        // The acceptance contrast: past the TLB's covered range, plain
        // INLJ thrashes (high per-lookup miss rate) while windowed INLJ
        // restores locality inside each window.
        let strategies = strategies();
        let (_, inlj_trace, spec) = observed_query(strategies[0].1);
        let (_, win_trace, _) = observed_query(strategies[1].1);
        let hm_inlj = tlb_heatmap(&spec, &inlj_trace, BUCKETS);
        let hm_win = tlb_heatmap(&spec, &win_trace, BUCKETS);
        assert!(
            hm_inlj.miss_rate() > 2.0 * hm_win.miss_rate(),
            "inlj miss rate {} vs windowed {}",
            hm_inlj.miss_rate(),
            hm_win.miss_rate()
        );
        // The offered side reconciles even if the ring evicted: the
        // trashing run's offered misses dwarf the windowed run's.
        assert!(hm_inlj.offered_misses > 2 * hm_win.offered_misses);
        // L2 heatmaps exist and cover the recorded interval.
        let l2 = l2_heatmap(&spec, &inlj_trace, BUCKETS);
        assert_eq!(l2.total_accesses(), inlj_trace.recorded().l2_accesses);
    }
}
