//! Methodology validation: scale invariance of the reproduction.
//!
//! The whole study runs at a reduced scale (default 1024×, DESIGN.md). If
//! the scaling methodology is sound, re-running the *same paper-scale
//! point* at different reduction factors must produce (approximately) the
//! same paper-scale estimates: the cliff must stay at 32 GiB, and Q/s must
//! agree within a small band. This experiment replays three configurations
//! at scales 256×–2048×.

use crate::config::ExpConfig;
use crate::output::{num, Experiment};
use serde_json::json;
use windex_core::prelude::*;

fn run_at_scale(
    scale_factor: u64,
    paper_gib: f64,
    paper_s_log2: u32,
    strategy: JoinStrategy,
) -> QueryReport {
    let scale = Scale::new(scale_factor);
    let spec = GpuSpec::v100_nvlink2(scale);
    let r = Relation::unique_sorted(
        scale.sim_tuples_for_paper_gib(paper_gib),
        KeyDistribution::Dense,
        42,
    );
    let s_tuples = (1usize << paper_s_log2) / scale_factor as usize;
    let s = Relation::foreign_keys_uniform(&r, s_tuples, 7);
    let mut gpu = Gpu::new(spec);
    QueryExecutor::new()
        .run(&mut gpu, &r, &s, strategy)
        .expect("query runs")
}

/// Replay fixed paper-scale points at several reduction factors.
pub fn validate_scale(cfg: &ExpConfig) -> Experiment {
    // Paper-scale point: R = 64 GiB (above the cliff), S = 2^26.
    let paper_gib = 64.0;
    let scales: &[u64] = if cfg.quick {
        &[512, 1024, 2048]
    } else {
        &[256, 512, 1024, 2048]
    };
    let strategies = [
        (
            "windowed-inlj(radix-spline)",
            JoinStrategy::WindowedInlj {
                index: IndexKind::RadixSpline,
                // 32 MiB paper window = 2^22 tuples, scaled per factor below.
                window_tuples: 0, // placeholder, set per scale
            },
        ),
        ("hash-join", JoinStrategy::HashJoin),
        (
            "inlj(binary-search)",
            JoinStrategy::Inlj {
                index: IndexKind::BinarySearch,
            },
        ),
    ];

    let mut columns = vec!["scale".to_string()];
    for (name, _) in &strategies {
        columns.push(format!("Q/s {name}"));
    }
    columns.push("tx/lookup inlj(binary-search)".into());

    let mut rows = Vec::new();
    for &factor in scales {
        let mut row = vec![json!(format!("1:{factor}"))];
        let mut bs_tx = 0.0;
        for (_, st) in &strategies {
            let st = match st {
                JoinStrategy::WindowedInlj { index, .. } => JoinStrategy::WindowedInlj {
                    index: *index,
                    window_tuples: ((1usize << 22) / factor as usize).max(1),
                },
                other => *other,
            };
            let rep = run_at_scale(factor, paper_gib, 26, st);
            if matches!(st, JoinStrategy::Inlj { .. }) {
                bs_tx = rep.translations_per_lookup();
            }
            row.push(num(rep.queries_per_second()));
        }
        row.push(num(bs_tx));
        rows.push(row);
    }

    Experiment {
        id: "validate-scale".into(),
        title: format!(
            "Scale invariance: the same paper-scale point (R = {paper_gib:.0} GiB, \
             S = 2^26) at different reduction factors"
        ),
        columns,
        rows,
        notes: vec![
            "If the scaling methodology is sound, each column should agree \
             across rows (the paper-scale estimate must not depend on the \
             reduction factor). Expect mild drift from log-depth effects \
             (binary search depth grows with the simulated tuple count) and \
             the per-lookup thrashing ratio."
                .into(),
        ],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn estimates_agree_across_scales() {
        let mut cfg = ExpConfig::quick();
        cfg.quick = true;
        let exp = validate_scale(&cfg);
        // Hash-join column must agree tightly (pure streaming, no log terms).
        let hash: Vec<f64> = exp.rows.iter().map(|r| r[2].as_f64().unwrap()).collect();
        let (lo, hi) = (
            hash.iter().cloned().fold(f64::INFINITY, f64::min),
            hash.iter().cloned().fold(0.0f64, f64::max),
        );
        assert!(hi / lo < 1.3, "hash join drifts with scale: {hash:?}");
        // Windowed INLJ within a 2x band.
        let inlj: Vec<f64> = exp.rows.iter().map(|r| r[1].as_f64().unwrap()).collect();
        let (lo, hi) = (
            inlj.iter().cloned().fold(f64::INFINITY, f64::min),
            inlj.iter().cloned().fold(0.0f64, f64::max),
        );
        assert!(hi / lo < 2.0, "windowed INLJ drifts with scale: {inlj:?}");
    }
}
