//! Fig. 7: impact of the window size on query throughput.
//!
//! R is fixed at 100 GiB, S at 2²⁶ tuples; the window size sweeps 2¹⁸–2²⁶
//! tuples (2–512 MiB; scaled 2⁸–2¹⁶). The paper finds all indexes stay
//! within 2×, with the RadixSpline and Harmonia preferring small windows.

use super::{make_r, make_s, run_point, v100};
use crate::config::ExpConfig;
use crate::output::{num, Experiment};
use serde_json::json;
use windex_core::prelude::*;

/// Run the window-size sweep.
pub fn fig7(cfg: &ExpConfig) -> Experiment {
    let spec = v100(cfg);
    let r = make_r(cfg, cfg.fixed_r_gib);
    let s = make_s(cfg, &r);
    let mut columns = vec!["window (paper MiB)".to_string()];
    for k in IndexKind::all() {
        columns.push(format!("Q/s windowed-inlj({k})"));
    }
    let mut rows = Vec::new();
    for window_tuples in cfg.window_sweep() {
        // Window bytes at paper scale: tuples × 8 B × scale.
        let paper_mib = (window_tuples as u64 * 8 * cfg.scale.factor) >> 20;
        let mut row = vec![json!(paper_mib)];
        for index in IndexKind::all() {
            let report = run_point(
                &spec,
                &r,
                &s,
                JoinStrategy::WindowedInlj {
                    index,
                    window_tuples,
                },
            );
            row.push(num(report.queries_per_second()));
        }
        rows.push(row);
    }
    Experiment {
        id: "fig7".into(),
        title: format!("Window-size sweep at R = {:.0} GiB (Q/s)", cfg.fixed_r_gib),
        columns,
        rows,
        notes: vec![
            "Expected shape: throughput varies within ~2x across window \
             sizes; small windows (4-52 MiB) suffice — no TLB cliff at any \
             size (§5.2.1). The largest window (= the whole probe side) \
             degenerates to full materialization and loses inter-window \
             pipelining."
                .into(),
            "Scale caveat: a scaled window holds 1024x fewer tuples but \
             sweeps the same number of pages per window, so the TLB cost of \
             the smallest (2 MiB) windows is exaggerated relative to the \
             paper (see EXPERIMENTS.md)."
                .into(),
        ],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn throughput_stays_within_a_small_band() {
        let mut cfg = ExpConfig::quick();
        cfg.s_tuples = 1 << 11;
        cfg.fixed_r_gib = 48.0;
        let exp = fig7(&cfg);
        // RadixSpline column (last): min and max within ~3x (generous band
        // for the reduced probe size).
        let vals: Vec<f64> = exp.rows.iter().map(|r| r[4].as_f64().unwrap()).collect();
        let lo = vals.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = vals.iter().cloned().fold(0.0, f64::max);
        // The reduced probe size exaggerates the smallest window's
        // page-sweep cost (see the experiment's scale caveat), so the band
        // is generous here; the full run lands near the paper's ~2x.
        assert!(hi / lo < 6.0, "window sensitivity too high: {lo}..{hi}");
    }
}
