//! One module per regenerated table/figure, plus shared sweep helpers.
//!
//! Workload construction follows §3.2: *R* holds unique sorted (dense)
//! keys and is scaled; *S* holds 2¹⁶ (scaled from 2²⁶) uniform foreign
//! keys and stays fixed; the index lives on *R*; throughput covers the
//! whole query.

pub mod ablations;
pub mod baseline;
pub mod chaos;
pub mod cluster;
pub mod fig1;
pub mod fig7;
pub mod fig8;
pub mod fig9;
pub mod figs34;
pub mod figs56;
pub mod observe;
pub mod regress;
pub mod requests;
pub mod serve;
pub mod simperf;
pub mod summary;
pub mod table1;
pub mod tuner;
pub mod validate;
pub mod whatif;

use crate::config::ExpConfig;
use windex_core::prelude::*;

/// Build the indexed relation for a paper-scale size in GiB.
///
/// Keys are dense (0‥n): the paper specifies only "unique, sorted keys"
/// (§3.2), and dense keys — the standard primary-key generator — are the
/// workload under which the paper's §6 factors are mutually consistent
/// (RadixSpline at ~1.9 Q/s, the 12× transfer reduction, and the 1.1–1.8×
/// RadixSpline-over-Harmonia band all require near-exact interpolation).
/// The `ablation-keydist` experiment quantifies the sparse-key case.
pub fn make_r(cfg: &ExpConfig, gib: f64) -> Relation {
    let n = cfg.scale.sim_tuples_for_paper_gib(gib);
    Relation::unique_sorted(n, KeyDistribution::Dense, 42)
}

/// Build the uniform probe relation (fixed size, §3.2).
pub fn make_s(cfg: &ExpConfig, r: &Relation) -> Relation {
    Relation::foreign_keys_uniform(r, cfg.s_tuples, 7)
}

/// The paper's primary platform at the configured scale.
pub fn v100(cfg: &ExpConfig) -> GpuSpec {
    GpuSpec::v100_nvlink2(cfg.scale)
}

/// The §5.2.3 comparison platform.
pub fn a100(cfg: &ExpConfig) -> GpuSpec {
    GpuSpec::a100_pcie4(cfg.scale)
}

/// Run one query point with default executor settings on a fresh GPU.
pub fn run_point(
    spec: &GpuSpec,
    r: &Relation,
    s: &Relation,
    strategy: JoinStrategy,
) -> QueryReport {
    run_point_with(spec, r, s, strategy, &QueryExecutor::new())
}

/// Run one query point with a custom executor.
pub fn run_point_with(
    spec: &GpuSpec,
    r: &Relation,
    s: &Relation,
    strategy: JoinStrategy,
    executor: &QueryExecutor,
) -> QueryReport {
    let mut gpu = Gpu::new(spec.clone());
    executor
        .run(&mut gpu, r, s, strategy)
        .expect("experiment query must succeed")
}

/// The strategy sets of the figures: hash join plus one INLJ per index, in
/// the paper's plot order (B+tree, binary search, Harmonia, RadixSpline).
pub fn inlj_strategies(make: impl Fn(IndexKind) -> JoinStrategy) -> Vec<JoinStrategy> {
    IndexKind::all().into_iter().map(make).collect()
}

/// Interpolate the R size (paper GiB) where the `inlj` series crosses above
/// the `hash` series; both series are (gib, q/s) aligned on the same xs.
/// Returns `None` if no crossover occurs inside the sweep.
pub fn crossover_gib(series_hash: &[(f64, f64)], series_inlj: &[(f64, f64)]) -> Option<f64> {
    assert_eq!(series_hash.len(), series_inlj.len(), "series must align");
    for i in 1..series_hash.len() {
        let (x0, h0) = series_hash[i - 1];
        let (x1, h1) = series_hash[i];
        let i0 = series_inlj[i - 1].1;
        let i1 = series_inlj[i].1;
        let d0 = i0 - h0;
        let d1 = i1 - h1;
        if d0 < 0.0 && d1 >= 0.0 {
            // Linear interpolation of the sign change.
            let t = d0 / (d0 - d1);
            return Some(x0 + t * (x1 - x0));
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crossover_interpolates() {
        let hash = [(1.0, 4.0), (2.0, 2.0), (4.0, 1.0)];
        let inlj = [(1.0, 1.5), (2.0, 1.5), (4.0, 1.5)];
        let x = crossover_gib(&hash, &inlj).unwrap();
        assert!(x > 2.0 && x < 4.0, "crossover {x}");
    }

    #[test]
    fn no_crossover_when_hash_always_wins() {
        let hash = [(1.0, 4.0), (2.0, 3.0)];
        let inlj = [(1.0, 1.0), (2.0, 1.0)];
        assert_eq!(crossover_gib(&hash, &inlj), None);
    }

    #[test]
    fn workload_sizes_match_scale() {
        let cfg = ExpConfig::quick();
        let r = make_r(&cfg, 1.0);
        assert_eq!(r.len(), 1 << 17); // 1 paper GiB = 2^17 sim tuples
        let s = make_s(&cfg, &r);
        assert_eq!(s.len(), cfg.s_tuples);
    }
}
