//! Fig. 8: query throughput under Zipf-skewed lookup keys.
//!
//! The lookup keys are Zipf-distributed with exponents 0–1.75 over R =
//! 100 GiB, window 32 MiB (§5.2.2). INLJ throughput *rises* past exponent
//! 1.0 because hot traversal paths stay in the on-chip caches. The hash
//! join — which must *build* on the now heavily-duplicated S — degrades
//! into long value-block chains; the paper terminated its measurement run
//! after 10 hours.
//!
//! ## Skew extrapolation note
//!
//! Chain-walk cost grows *quadratically* in each key's duplicate count, so
//! the 1024× linear counter scaling understates it. The driver therefore
//! adds an analytic correction: duplicate counts of hot keys grow ∝ |S|
//! (count scales by 1024, cost by 1024²), while cold keys (count ≲ 4) only
//! become more numerous (cost scales linearly, already priced). Runs whose
//! corrected estimate exceeds [`DNF_SECONDS`] are reported as DNF, mirroring
//! the paper's terminated run. The model still excludes atomic contention
//! on the hot chain, which makes real hardware degrade far more.

use super::{make_r, run_point, v100};
use crate::config::ExpConfig;
use crate::output::{num, Experiment};
use serde_json::{json, Value};
use std::collections::HashMap;
use windex_core::prelude::*;

/// Threshold beyond which a corrected hash-join estimate is reported DNF.
pub const DNF_SECONDS: f64 = 60.0;

/// Analytic quadratic correction (seconds) for the hash-join build on a
/// skewed S, given the simulated duplicate counts.
pub fn chain_penalty_seconds(s: &Relation, spec: &GpuSpec, max_block: usize) -> f64 {
    let mut counts: HashMap<u64, u64> = HashMap::new();
    for &k in s.keys() {
        *counts.entry(k).or_insert(0) += 1;
    }
    // Hot keys: duplicate count scales with |S| (quadratic cost). Cold
    // keys: count stays O(1) at paper scale; their linear cost is already
    // priced by the cost model.
    let hot_sq: f64 = counts
        .values()
        .filter(|&&c| c >= 4)
        .map(|&c| (c as f64) * (c as f64))
        .sum();
    let k = spec.scale.factor as f64;
    let extra_blocks = (k * k - k) * hot_sq / (2.0 * max_block as f64);
    extra_blocks * spec.cacheline_bytes as f64 / (spec.mem_bandwidth_gbps * 1e9)
}

/// Run the skew sweep.
pub fn fig8(cfg: &ExpConfig) -> Experiment {
    let spec = v100(cfg);
    let r = make_r(cfg, cfg.fixed_r_gib);
    let mut columns = vec!["zipf exponent".to_string()];
    for k in IndexKind::all() {
        columns.push(format!("Q/s windowed-inlj({k})"));
    }
    columns.push("Q/s hash-join".to_string());
    columns.push("L1 hit rate (RadixSpline)".to_string());

    let mut rows = Vec::new();
    let mut dnf_seen = false;
    for z in cfg.zipf_exponents() {
        let s = Relation::foreign_keys_zipf(&r, cfg.s_tuples, z, 7);
        let mut row = vec![json!(z)];
        let mut rs_l1 = 0.0;
        for index in IndexKind::all() {
            let report = run_point(
                &spec,
                &r,
                &s,
                JoinStrategy::WindowedInlj {
                    index,
                    window_tuples: cfg.window_tuples,
                },
            );
            if index == IndexKind::RadixSpline {
                rs_l1 = report.counters.l1_hit_rate();
            }
            row.push(num(report.queries_per_second()));
        }
        // Hash join with the quadratic build correction.
        let report = run_point(&spec, &r, &s, JoinStrategy::HashJoin);
        let penalty = chain_penalty_seconds(&s, &spec, 512);
        let total = report.time.total_s + penalty;
        if total > DNF_SECONDS {
            dnf_seen = true;
            row.push(Value::Null);
        } else {
            row.push(num(1.0 / total));
        }
        row.push(num(rs_l1));
        rows.push(row);
    }
    let mut notes = vec![
        "Expected shape: INLJ throughput increases for exponents above 1.0 \
         (hot paths cached on-chip); the hash join degrades to long value \
         chains (§5.2.2)."
            .into(),
        "Hash-join estimates include the quadratic chain-walk correction \
         described in the module docs; contention is not modeled."
            .into(),
    ];
    if dnf_seen {
        notes.push(format!(
            "DNF (—): corrected estimate exceeded {DNF_SECONDS} s; the paper \
             terminated its corresponding run after 10 hours."
        ));
    }
    Experiment {
        id: "fig8".into(),
        title: format!(
            "Query throughput with Zipf-skewed lookup keys (R = {:.0} GiB, window 32 MiB)",
            cfg.fixed_r_gib
        ),
        columns,
        rows,
        notes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn penalty_grows_with_skew() {
        let cfg = ExpConfig::quick();
        let spec = v100(&cfg);
        let r = make_r(&cfg, 4.0);
        let uniform = Relation::foreign_keys_zipf(&r, 1 << 12, 0.0, 1);
        let skewed = Relation::foreign_keys_zipf(&r, 1 << 12, 1.75, 1);
        let p_u = chain_penalty_seconds(&uniform, &spec, 512);
        let p_s = chain_penalty_seconds(&skewed, &spec, 512);
        assert!(p_s > 100.0 * p_u.max(1e-12), "penalty {p_u} -> {p_s}");
    }

    #[test]
    fn skew_helps_the_windowed_inlj() {
        let mut cfg = ExpConfig::quick();
        cfg.s_tuples = 1 << 11;
        cfg.fixed_r_gib = 32.0;
        let spec = v100(&cfg);
        let r = make_r(&cfg, cfg.fixed_r_gib);
        let run = |z: f64| {
            let s = Relation::foreign_keys_zipf(&r, cfg.s_tuples, z, 7);
            run_point(
                &spec,
                &r,
                &s,
                JoinStrategy::WindowedInlj {
                    index: IndexKind::RadixSpline,
                    window_tuples: cfg.window_tuples,
                },
            )
            .queries_per_second()
        };
        let flat = run(0.0);
        let hot = run(1.75);
        assert!(hot > flat, "skewed {hot} <= uniform {flat}");
    }
}
