//! Fig. 9: hardware comparison — V100 + NVLink 2.0 vs A100 + PCI-e 4.0.
//!
//! The two fastest INLJ variants (RadixSpline and Harmonia, windowed) and
//! the hash join, swept over R on both platforms (§5.2.3). The paper finds
//! the hash join 1.7× faster on the A100 (it is the faster GPU), while the
//! INLJ fares relatively better on NVLink, moving the crossover from
//! 13.9 GiB (3.6 %) on the A100 to 6.2 GiB (8.0 %) on the V100.

use super::{a100, crossover_gib, make_r, make_s, run_point, v100};
use crate::config::ExpConfig;
use crate::output::{num, Experiment};
use serde_json::json;
use windex_core::prelude::*;

/// Run the two-platform sweep.
pub fn fig9(cfg: &ExpConfig) -> Experiment {
    let specs = [("V100+NVLink2", v100(cfg)), ("A100+PCIe4", a100(cfg))];
    let strategies = [
        (
            "windowed-inlj(radix-spline)",
            JoinStrategy::WindowedInlj {
                index: IndexKind::RadixSpline,
                window_tuples: cfg.window_tuples,
            },
        ),
        (
            "windowed-inlj(harmonia)",
            JoinStrategy::WindowedInlj {
                index: IndexKind::Harmonia,
                window_tuples: cfg.window_tuples,
            },
        ),
        ("hash-join", JoinStrategy::HashJoin),
    ];

    let mut columns = vec!["R (GiB)".to_string()];
    for (plat, _) in &specs {
        for (name, _) in &strategies {
            columns.push(format!("Q/s {plat} {name}"));
        }
    }

    // series[platform][strategy] = Vec<(gib, q/s)>
    let mut series: Vec<Vec<Vec<(f64, f64)>>> =
        vec![vec![Vec::new(); strategies.len()]; specs.len()];
    let mut rows = Vec::new();
    for &gib in &cfg.sweep_gib {
        let r = make_r(cfg, gib);
        let s = make_s(cfg, &r);
        let mut row = vec![json!(gib)];
        for (pi, (_, spec)) in specs.iter().enumerate() {
            for (si, (_, st)) in strategies.iter().enumerate() {
                let qps = run_point(spec, &r, &s, *st).queries_per_second();
                series[pi][si].push((gib, qps));
                row.push(num(qps));
            }
        }
        rows.push(row);
    }

    let mut notes = vec![
        "Expected shape: hash join ~1.7x faster on the A100 (faster GPU); \
         INLJ relatively stronger over NVLink, so the INLJ-beats-hash \
         crossover comes earlier on the V100 (§5.2.3)."
            .into(),
    ];
    // Hash speedup A100/V100 at the largest size.
    let last = cfg.sweep_gib.len() - 1;
    let hash_v = series[0][2][last].1;
    let hash_a = series[1][2][last].1;
    notes.push(format!(
        "hash-join speedup A100/V100 at {:.0} GiB: {:.2}x (paper: 1.7x). \
         Known model deviation: with a WarpCore-faithful ~2 cacheline \
         fetches per probe, the A100 hash join is bound by its PCI-e 4.0 \
         scan (25 GB/s), not by HBM — the paper's 1.7x implies a \
         GPU-memory-bound hash join (~4 fetches/probe), which would break \
         the more load-bearing 111 GiB V100 anchor (0.2 Q/s). See \
         EXPERIMENTS.md.",
        cfg.sweep_gib[last],
        hash_a / hash_v
    ));
    for (pi, (plat, _)) in specs.iter().enumerate() {
        let s_tuples_gib =
            (cfg.s_tuples as u64 * 8 * cfg.scale.factor) as f64 / (1u64 << 30) as f64;
        match crossover_gib(&series[pi][2], &series[pi][0]) {
            Some(x) => notes.push(format!(
                "{plat}: RadixSpline INLJ overtakes the hash join at ~{x:.1} GiB \
                 ({:.1} % selectivity); paper: 6.2 GiB (8.0 %) V100, 13.9 GiB (3.6 %) A100",
                100.0 * s_tuples_gib / x
            )),
            None => notes.push(format!(
                "{plat}: no crossover inside the sweep ({:?} GiB)",
                cfg.sweep_gib
            )),
        }
    }

    Experiment {
        id: "fig9".into(),
        title: "Hardware comparison: PCI-e 4.0 vs NVLink 2.0 (Q/s)".into(),
        columns,
        rows,
        notes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nvlink_favours_the_inlj_over_pcie() {
        let mut cfg = ExpConfig::quick();
        cfg.s_tuples = 1 << 11;
        cfg.sweep_gib = vec![64.0];
        let exp = fig9(&cfg);
        let row = &exp.rows[0];
        // Columns: x, V100 RS, V100 H, V100 hash, A100 RS, A100 H, A100 hash.
        let v100_rs = row[1].as_f64().unwrap();
        let v100_hash = row[3].as_f64().unwrap();
        let a100_rs = row[4].as_f64().unwrap();
        let a100_hash = row[6].as_f64().unwrap();
        // The INLJ itself is faster over NVLink (fine-grained reads).
        assert!(v100_rs > a100_rs, "V100 RS {v100_rs} <= A100 RS {a100_rs}");
        // The INLJ-vs-hash advantage is larger on NVLink than on PCIe, so
        // the crossover comes earlier on the V100 (§5.2.3).
        assert!(
            v100_rs / v100_hash > a100_rs / a100_hash,
            "NVLink should favour the INLJ"
        );
        // Known model deviation documented in the notes: the A100 hash join
        // is PCIe-scan-bound here, not 1.7x faster as the paper claims.
        assert!(exp
            .notes
            .iter()
            .any(|n| n.contains("Known model deviation")));
    }
}
