//! The `chaos` target: resilience KPIs under time-correlated fault
//! windows, with a CI tolerance gate.
//!
//! Every other serving number assumes a healthy device. This target runs
//! the same seeded serving trace under each named [`ChaosScenario`] —
//! calm, a link flap, an interconnect brownout, an ECC storm, a whole
//! device loss, and all of them overlapping — and reports what the
//! resilience layer preserved: availability (answered / submitted),
//! recoveries and total MTTR on the virtual clock, retry volume, breaker
//! trips, goodput, p99, and goodput retained vs the calm run.
//!
//! Everything is a pure function of (seed, scenario): the chaos windows
//! sit on the serving clock, the backoff jitter is counter-indexed, and
//! scenario points are independent simulations merged in fixed sweep
//! order — so the report and `BENCH_chaos.json` are byte-identical across
//! runs and for any `--jobs` count.
//!
//! When a committed `BENCH_chaos.json` exists (override the path with
//! `WINDEX_CHAOS`), the fresh KPIs are gated against it: discrete
//! outcomes (completed, shed, recoveries, retries, breaker trips,
//! availability) must match exactly; continuous ones (goodput, p99,
//! MTTR, retained share) get a 2% relative band for benign cost-model
//! churn. A missing committed file is a warning — the recording run.
//! Independently of any committed file, the device-loss scenario must
//! answer every request (availability 1.0) with at least one finite
//! recovery, or the target fails.

use crate::config::ExpConfig;
use crate::output::{num, num6, Experiment};
use serde::Serialize;
use serde_json::{json, Value};
use windex_serve::prelude::*;
use windex_sim::ChaosScenario;

/// Format-version marker for `BENCH_chaos.json`.
pub(crate) const SCHEMA_VERSION: u32 = 1;

/// Seed for every scenario's chaos schedule.
const CHAOS_SEED: u64 = 99;

/// Requests per scenario trace. Fixed (not `--quick`-dependent): at
/// 2000 req/s the trace spans ~128 ms of virtual time, comfortably
/// covering every scenario's fault windows (all inside the first 60 ms).
const TRACE_REQUESTS: usize = 256;

/// Relative tolerance for continuous KPIs against the committed file.
const REL_TOL: f64 = 0.02;

/// Where the committed reference lives unless `WINDEX_CHAOS` overrides.
const DEFAULT_CHAOS_PATH: &str = "BENCH_chaos.json";

/// One scenario's resilience KPIs.
#[derive(Debug, Clone, Serialize)]
struct ChaosPoint {
    scenario: &'static str,
    /// Fraction of submitted requests answered (not shed).
    availability: f64,
    completed: usize,
    shed: usize,
    /// Device-loss recoveries performed mid-trace.
    recoveries: u64,
    /// Total virtual MTTR across those recoveries, seconds.
    mttr_total_s: f64,
    /// Serve-level dispatch retries (jittered backoff).
    retries: u64,
    /// Circuit-breaker trips to open.
    breaker_opens: u64,
    /// Requests answered within the deadline budget per virtual second.
    goodput_rps: f64,
    /// p99 latency over answered requests, virtual seconds.
    p99_s: f64,
    /// `goodput_rps / calm goodput_rps` (1.0 for the calm row).
    goodput_retained: f64,
}

/// The `BENCH_chaos.json` payload.
#[derive(Debug, Clone, Serialize)]
struct ChaosBench {
    schema: u32,
    chaos_seed: u64,
    trace_requests: usize,
    scenarios: Vec<ChaosPoint>,
}

/// Round to 6 decimals: canonical on-disk float form, keeps the gate from
/// chasing last-bit jitter from benign refactors.
fn r6(v: f64) -> f64 {
    (v * 1e6).round() / 1e6
}

/// The serving relation: 1 paper-GiB of dense sorted keys at paper scale
/// (fixed, like the baseline matrix, so the JSON is mode-independent).
fn chaos_relation() -> Relation {
    Relation::unique_sorted(
        Scale::PAPER.sim_tuples_for_paper_gib(1.0),
        KeyDistribution::Dense,
        42,
    )
}

/// The seeded trace every scenario replays.
fn chaos_trace(r: &Relation) -> Vec<TimedRequest> {
    generate_trace(
        &TraceConfig {
            seed: 7,
            tenants: 4,
            requests: TRACE_REQUESTS,
            min_keys: 4,
            max_keys: 64,
            offered_load_rps: 2_000.0,
            deadline_s: None,
        },
        r,
    )
}

/// Run one scenario on a fresh device; `goodput_retained` is filled in
/// after the calm row is known.
fn run_scenario(r: &Relation, trace: &[TimedRequest], scenario: ChaosScenario) -> ChaosPoint {
    let mut gpu = Gpu::new(GpuSpec::v100_nvlink2(Scale::PAPER));
    let mut server = Server::new(&mut gpu, ServeConfig::default(), r.clone())
        .expect("chaos experiment server must construct");
    gpu.set_chaos_schedule(scenario.schedule(CHAOS_SEED))
        .expect("scenario schedules are valid");
    let report = server
        .run(&mut gpu, trace)
        .expect("chaos trace must complete without a server-level error")
        .report;

    let mut recoveries = 0u64;
    let mut mttr_total_s = 0.0f64;
    let mut retries = 0u64;
    for e in &report.events {
        match e {
            ServeEvent::DeviceLossRecovered { mttr_s } => {
                recoveries += 1;
                mttr_total_s += mttr_s;
            }
            ServeEvent::DispatchRetried { .. } => retries += 1,
            _ => {}
        }
    }
    ChaosPoint {
        scenario: scenario.name(),
        availability: r6(report.slo.availability),
        completed: report.completed,
        shed: report.shed,
        recoveries,
        mttr_total_s: r6(mttr_total_s),
        retries,
        breaker_opens: report.breaker.opens,
        goodput_rps: r6(report.slo.goodput_rps),
        p99_s: r6(report.slo.p99_s),
        goodput_retained: 0.0,
    }
}

/// Compute all scenario points with `jobs` workers, merged in
/// [`ChaosScenario::ALL`] order. Workers only decide *when* a scenario
/// runs, never *what* it computes, so any job count merges identically.
fn compute(jobs: usize) -> ChaosBench {
    let r = chaos_relation();
    let trace = chaos_trace(&r);
    let scenarios = ChaosScenario::ALL;
    let mut points: Vec<Option<ChaosPoint>> = if jobs <= 1 {
        scenarios
            .iter()
            .map(|&sc| Some(run_scenario(&r, &trace, sc)))
            .collect()
    } else {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let next = AtomicUsize::new(0);
        let mut slots: Vec<Option<ChaosPoint>> = vec![None; scenarios.len()];
        std::thread::scope(|scope| {
            let workers: Vec<_> = (0..jobs)
                .map(|_| {
                    scope.spawn(|| {
                        let mut mine = Vec::new();
                        loop {
                            let i = next.fetch_add(1, Ordering::Relaxed);
                            if i >= scenarios.len() {
                                break;
                            }
                            mine.push((i, run_scenario(&r, &trace, scenarios[i])));
                        }
                        mine
                    })
                })
                .collect();
            for w in workers {
                for (i, p) in w.join().expect("chaos worker panicked") {
                    slots[i] = Some(p);
                }
            }
        });
        slots
    };
    let calm_goodput = points[0].as_ref().expect("calm scenario ran").goodput_rps;
    for p in points.iter_mut().flatten() {
        p.goodput_retained = if calm_goodput > 0.0 {
            r6(p.goodput_rps / calm_goodput)
        } else {
            0.0
        };
    }
    ChaosBench {
        schema: SCHEMA_VERSION,
        chaos_seed: CHAOS_SEED,
        trace_requests: TRACE_REQUESTS,
        scenarios: points
            .into_iter()
            .map(|p| p.expect("scenario ran"))
            .collect(),
    }
}

/// Invariants that hold regardless of any committed reference: the
/// device-bearing scenarios must recover, not refuse.
fn check_invariants(bench: &ChaosBench) -> Result<(), String> {
    for p in &bench.scenarios {
        if p.scenario == "device_loss" {
            if p.availability != 1.0 || p.shed != 0 {
                return Err(format!(
                    "device-loss scenario must answer every request: \
                     availability {} with {} shed",
                    p.availability, p.shed
                ));
            }
            if p.recoveries == 0 || !p.mttr_total_s.is_finite() || p.mttr_total_s <= 0.0 {
                return Err(format!(
                    "device-loss scenario must record a finite recovery: \
                     {} recoveries, total MTTR {}s",
                    p.recoveries, p.mttr_total_s
                ));
            }
        }
        if !p.goodput_rps.is_finite() || !p.p99_s.is_finite() {
            return Err(format!(
                "scenario '{}' produced non-finite KPIs",
                p.scenario
            ));
        }
    }
    Ok(())
}

fn field<'v>(entry: &'v Value, key: &str) -> Result<&'v Value, String> {
    entry
        .get(key)
        .ok_or_else(|| format!("chaos entry missing field '{key}'"))
}

fn f64_field(entry: &Value, key: &str) -> Result<f64, String> {
    field(entry, key)?
        .as_f64()
        .ok_or_else(|| format!("chaos field '{key}' is not a number"))
}

fn u64_field(entry: &Value, key: &str) -> Result<u64, String> {
    field(entry, key)?
        .as_u64()
        .ok_or_else(|| format!("chaos field '{key}' is not an unsigned integer"))
}

/// Whether `fresh` is within `tol` of `committed`, relatively.
fn rel_close(fresh: f64, committed: f64, tol: f64) -> bool {
    if committed == 0.0 {
        fresh == 0.0
    } else {
        ((fresh - committed) / committed).abs() <= tol
    }
}

/// Diff one fresh point against its committed counterpart; returns the
/// violated metrics as human-readable strings.
fn diff_point(fresh: &ChaosPoint, committed: &Value) -> Result<Vec<String>, String> {
    let mut out = Vec::new();
    let mut exact_u64 = |key: &str, have: u64| -> Result<(), String> {
        let want = u64_field(committed, key)?;
        if have != want {
            out.push(format!("{key}: committed {want}, fresh {have}"));
        }
        Ok(())
    };
    exact_u64("completed", fresh.completed as u64)?;
    exact_u64("shed", fresh.shed as u64)?;
    exact_u64("recoveries", fresh.recoveries)?;
    exact_u64("retries", fresh.retries)?;
    exact_u64("breaker_opens", fresh.breaker_opens)?;
    let availability = f64_field(committed, "availability")?;
    if fresh.availability != availability {
        out.push(format!(
            "availability: committed {availability}, fresh {}",
            fresh.availability
        ));
    }
    for (key, have) in [
        ("mttr_total_s", fresh.mttr_total_s),
        ("goodput_rps", fresh.goodput_rps),
        ("p99_s", fresh.p99_s),
        ("goodput_retained", fresh.goodput_retained),
    ] {
        let want = f64_field(committed, key)?;
        if !rel_close(have, want, REL_TOL) {
            out.push(format!(
                "{key}: committed {want}, fresh {have} (>{:.0}% off)",
                REL_TOL * 100.0
            ));
        }
    }
    Ok(out)
}

/// Gate the fresh bench against a committed file, if one exists.
fn gate(fresh: &ChaosBench, path: &str) -> Result<String, String> {
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(_) => {
            return Ok(format!(
                "no committed reference at '{path}'; gate skipped (recording run)"
            ))
        }
    };
    let root: Value =
        serde_json::from_str(&text).map_err(|e| format!("'{path}' is not JSON: {e}"))?;
    let schema = u64_field(&root, "schema")?;
    if schema != u64::from(SCHEMA_VERSION) {
        return Err(format!(
            "chaos schema v{schema} != expected v{SCHEMA_VERSION}; \
             regenerate with `experiments chaos`"
        ));
    }
    let committed = field(&root, "scenarios")?
        .as_array()
        .ok_or("chaos 'scenarios' is not an array")?;
    if committed.len() != fresh.scenarios.len() {
        return Err(format!(
            "committed file has {} scenarios, fresh run has {}",
            committed.len(),
            fresh.scenarios.len()
        ));
    }
    let mut violations = Vec::new();
    for (f, c) in fresh.scenarios.iter().zip(committed) {
        let name = field(c, "scenario")?
            .as_str()
            .ok_or("chaos field 'scenario' is not a string")?;
        if name != f.scenario {
            return Err(format!(
                "scenario order mismatch: committed '{name}', fresh '{}'",
                f.scenario
            ));
        }
        for v in diff_point(f, c)? {
            violations.push(format!("[{}] {v}", f.scenario));
        }
    }
    if violations.is_empty() {
        Ok(format!(
            "gate: {} scenarios within tolerance of '{path}' — ok",
            fresh.scenarios.len()
        ))
    } else {
        Err(format!(
            "chaos KPI drift vs '{path}':\n  {}",
            violations.join("\n  ")
        ))
    }
}

/// The `chaos` target. `Err` (→ nonzero exit) on invariant or gate
/// violations.
pub fn chaos(cfg: &ExpConfig) -> Result<Experiment, String> {
    let bench = compute(cfg.jobs);
    check_invariants(&bench)?;

    let path = std::env::var("WINDEX_CHAOS").unwrap_or_else(|_| DEFAULT_CHAOS_PATH.to_string());
    let gate_note = gate(&bench, &path)?;

    let out_path = cfg.out_dir.join("BENCH_chaos.json");
    let mut text = serde_json::to_string_pretty(&bench).expect("chaos bench serializes");
    text.push('\n');
    let write =
        std::fs::create_dir_all(&cfg.out_dir).and_then(|()| std::fs::write(&out_path, text));
    if let Err(e) = write {
        eprintln!("warning: could not write {}: {e}", out_path.display());
    }

    let rows = bench
        .scenarios
        .iter()
        .map(|p| {
            vec![
                json!(p.scenario),
                num6(p.availability),
                json!(p.completed),
                json!(p.shed),
                json!(p.recoveries),
                num6(p.mttr_total_s * 1e3),
                json!(p.retries),
                json!(p.breaker_opens),
                num(p.goodput_rps),
                num6(p.p99_s * 1e3),
                num6(p.goodput_retained),
            ]
        })
        .collect();
    Ok(Experiment {
        id: "chaos".into(),
        title: "Chaos: serving resilience KPIs under fault windows".into(),
        columns: vec![
            "scenario".into(),
            "availability".into(),
            "completed".into(),
            "shed".into(),
            "recoveries".into(),
            "mttr_ms".into(),
            "retries".into(),
            "breaker_opens".into(),
            "goodput_rps".into(),
            "p99_ms".into(),
            "goodput_retained".into(),
        ],
        rows,
        notes: vec![
            format!(
                "{TRACE_REQUESTS}-request seeded trace replayed under each scenario \
                 (chaos seed {CHAOS_SEED}); virtual-clock KPIs, byte-identical across \
                 runs and --jobs counts"
            ),
            "device loss is recovered by rebuilding device state from host-resident \
             data: availability stays 1.0 and MTTR is the outage wait plus the priced \
             rebuild"
                .into(),
            gate_note,
            "also written as BENCH_chaos.json (gated against the committed copy)".into(),
        ],
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bench() -> ChaosBench {
        compute(1)
    }

    #[test]
    fn scenarios_sweep_in_fixed_order_and_hold_invariants() {
        let b = bench();
        assert_eq!(b.scenarios.len(), ChaosScenario::ALL.len());
        let names: Vec<&str> = b.scenarios.iter().map(|p| p.scenario).collect();
        assert_eq!(
            names,
            vec![
                "calm",
                "flap",
                "brownout",
                "ecc_storm",
                "device_loss",
                "combined"
            ]
        );
        check_invariants(&b).expect("invariants hold");
        // The calm row anchors the retained column.
        assert_eq!(b.scenarios[0].goodput_retained, 1.0);
        assert_eq!(b.scenarios[0].recoveries, 0);
        assert_eq!(b.scenarios[0].retries, 0);
    }

    #[test]
    fn device_loss_point_recovers_with_full_availability() {
        let b = bench();
        let p = b
            .scenarios
            .iter()
            .find(|p| p.scenario == "device_loss")
            .unwrap();
        assert_eq!(p.availability, 1.0);
        assert_eq!(p.shed, 0);
        assert!(p.recoveries >= 1);
        assert!(p.mttr_total_s > 0.0 && p.mttr_total_s.is_finite());
    }

    #[test]
    fn jobs_counts_merge_byte_identically() {
        let a = serde_json::to_string(&compute(1)).unwrap();
        let b = serde_json::to_string(&compute(4)).unwrap();
        assert_eq!(a, b, "--jobs must not change BENCH_chaos.json");
    }

    #[test]
    fn gate_flags_drift_and_accepts_self() {
        let b = bench();
        let dir = std::env::temp_dir().join("windex-chaos-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("chaos.json");
        let text = serde_json::to_string_pretty(&b).unwrap();
        std::fs::write(&path, &text).unwrap();
        // Self-comparison passes.
        gate(&b, path.to_str().unwrap()).expect("self gate passes");
        // A perturbed discrete KPI fails.
        let mut drifted = b.clone();
        drifted.scenarios[0].completed += 1;
        std::fs::write(&path, serde_json::to_string_pretty(&drifted).unwrap()).unwrap();
        let err = gate(&b, path.to_str().unwrap()).unwrap_err();
        assert!(err.contains("completed"), "{err}");
        // Missing file is a recording run, not a failure.
        let note = gate(&b, "/nonexistent/chaos.json").unwrap();
        assert!(note.contains("recording run"));
    }
}
