//! Figs. 5 and 6: partitioned lookup keys.
//!
//! Fig. 5 repeats the Fig. 3 sweep with the lookup keys radix-partitioned
//! (materialized) inside the measured query. Fig. 6 reports the percentage
//! of address-translation requests eliminated relative to the
//! unpartitioned runs.

use super::figs34::unpartitioned_sweep;
use super::{inlj_strategies, make_r, make_s, run_point, v100};
use crate::config::ExpConfig;
use crate::output::{num, Experiment};
use serde_json::{json, Value};
use windex_core::prelude::*;

/// The partitioned sweep: per R size, one `PartitionedInlj` per index.
pub fn partitioned_sweep(cfg: &ExpConfig) -> Vec<(f64, Vec<QueryReport>)> {
    let spec = v100(cfg);
    let strategies = inlj_strategies(|index| JoinStrategy::PartitionedInlj { index });
    cfg.sweep_gib
        .iter()
        .map(|&gib| {
            let r = make_r(cfg, gib);
            let s = make_s(cfg, &r);
            let reports = strategies
                .iter()
                .map(|&st| run_point(&spec, &r, &s, st))
                .collect();
            (gib, reports)
        })
        .collect()
}

/// Build Fig. 5: throughput with partitioned keys, hash join as reference.
/// `hash` supplies the per-size hash-join reports (from the Fig. 3 sweep).
pub fn fig5_from(part: &[(f64, Vec<QueryReport>)], hash: &[(f64, QueryReport)]) -> Experiment {
    let mut columns = vec!["R (GiB)".to_string(), "Q/s hash-join".to_string()];
    for k in IndexKind::all() {
        columns.push(format!("Q/s part-inlj({k})"));
    }
    let rows = part
        .iter()
        .zip(hash)
        .map(|((gib, reports), (_, h))| {
            let mut row = vec![json!(gib), num(h.queries_per_second())];
            row.extend(reports.iter().map(|r| num(r.queries_per_second())));
            row
        })
        .collect();
    Experiment {
        id: "fig5".into(),
        title: "Query throughput (Q/s) when partitioning lookup keys".into(),
        columns,
        rows,
        notes: vec![
            "Expected shape: the sudden TLB drop is remedied; all INLJs beat \
             the hash join at large R; paper reports 0.6 / 0.7 / 1 / 1.9 Q/s \
             (B+tree / binary search / Harmonia / RadixSpline) vs 0.2 Q/s at \
             111 GiB — up to 10x (§4.3.1)."
                .into(),
        ],
    }
}

/// Build Fig. 6: % of translation requests eliminated vs the unpartitioned
/// runs (per index).
pub fn fig6_from(
    unpart: &[(f64, Vec<QueryReport>)],
    part: &[(f64, Vec<QueryReport>)],
) -> Experiment {
    let mut columns = vec!["R (GiB)".to_string()];
    for k in IndexKind::all() {
        columns.push(format!("% eliminated ({k})"));
    }
    let rows = unpart
        .iter()
        .zip(part)
        .map(|((gib, u_reports), (_, p_reports))| {
            let mut row = vec![json!(gib)];
            // The unpartitioned sweep's slot 0 is the hash join; the INLJ
            // reports follow in IndexKind::all() order.
            for (u, p) in u_reports[1..].iter().zip(p_reports.iter()) {
                let u_tx = u.translations_per_lookup();
                let p_tx = p.translations_per_lookup();
                if u_tx < 1e-2 {
                    // Below the TLB range there is nothing to eliminate.
                    row.push(Value::Null);
                } else {
                    row.push(num(100.0 * (1.0 - p_tx / u_tx)));
                }
            }
            row
        })
        .collect();
    Experiment {
        id: "fig6".into(),
        title: "Translation requests eliminated by partitioning (%)".into(),
        columns,
        rows,
        notes: vec![
            "Expected shape: ~100 % at and beyond the TLB range boundary; \
             blank cells mark sizes whose unpartitioned runs had no \
             meaningful translation traffic to eliminate (§4.3.2)."
                .into(),
        ],
    }
}

/// Run both sweeps and emit Fig. 5 and Fig. 6.
pub fn figs56(cfg: &ExpConfig) -> Vec<Experiment> {
    let unpart = unpartitioned_sweep(cfg);
    let part = partitioned_sweep(cfg);
    figs56_from(&unpart, &part)
}

/// Emit Fig. 5 and Fig. 6 from precomputed sweeps (shared with `all`).
pub fn figs56_from(
    unpart: &[(f64, Vec<QueryReport>)],
    part: &[(f64, Vec<QueryReport>)],
) -> Vec<Experiment> {
    let hash: Vec<(f64, QueryReport)> = unpart
        .iter()
        .map(|(gib, reports)| (*gib, reports[0].clone()))
        .collect();
    vec![fig5_from(part, &hash), fig6_from(unpart, part)]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn partitioning_removes_the_cliff_and_translations() {
        let mut cfg = ExpConfig::quick();
        cfg.s_tuples = 1 << 12;
        cfg.sweep_gib = vec![64.0];
        let unpart = unpartitioned_sweep(&cfg);
        let part = partitioned_sweep(&cfg);
        // Partitioned binary search is faster than unpartitioned at 64 GiB.
        let u_bs = unpart[0].1[1].queries_per_second();
        let p_bs = part[0].1[0].queries_per_second();
        assert!(p_bs > 2.0 * u_bs, "partitioned {p_bs} vs {u_bs}");
        // And nearly all translations are gone.
        let figs = figs56_from(&unpart, &part);
        let elim = figs[1].rows[0][1].as_f64().unwrap();
        assert!(elim > 90.0, "eliminated {elim}%");
    }
}
