//! §6 summary claims, derived from the measured sweeps.
//!
//! Recomputes the headline numbers of the paper's discussion section:
//! transfer-volume reduction, the TLB throughput drop, the INLJ-vs-hash
//! speedup, the RadixSpline-vs-Harmonia advantage, and the crossover
//! selectivity.

use super::figs34::unpartitioned_sweep;
use super::figs56::partitioned_sweep;
use super::{crossover_gib, make_r, make_s, run_point, v100};
use crate::config::ExpConfig;
use crate::output::{num, Experiment};
use serde_json::json;
use windex_core::prelude::*;

/// Compute the derived claims.
pub fn summary(cfg: &ExpConfig) -> Experiment {
    let spec = v100(cfg);
    let unpart = unpartitioned_sweep(cfg);
    let part = partitioned_sweep(cfg);
    let last = unpart.len() - 1;
    let biggest_gib = unpart[last].0;

    // Transfer volume: hash join vs the best (RadixSpline) partitioned INLJ
    // at the largest size. Index kinds are in IndexKind::all() order:
    // [BPlusTree, BinarySearch, Harmonia, RadixSpline].
    let hash = &unpart[last].1[0];
    let rs_part = &part[last].1[3];
    let transfer_reduction =
        hash.transfer_volume_paper_bytes as f64 / rs_part.transfer_volume_paper_bytes as f64;

    // TLB throughput drop: partitioned vs unpartitioned binary search at
    // the largest size (the drop the partitioning undoes, §6).
    let bs_unpart = unpart[last].1[2].queries_per_second();
    let bs_part = part[last].1[1].queries_per_second();
    let tlb_drop = bs_part / bs_unpart;

    // INLJ speedup over the hash join at the largest size (best index).
    let best_inlj = part[last]
        .1
        .iter()
        .map(|r| r.queries_per_second())
        .fold(0.0, f64::max);
    let speedup = best_inlj / hash.queries_per_second();

    // RadixSpline vs Harmonia across the partitioned sweep.
    let rs_vs_harmonia: Vec<f64> = part
        .iter()
        .map(|(_, reports)| reports[3].queries_per_second() / reports[2].queries_per_second())
        .collect();
    let (rs_h_min, rs_h_max) = (
        rs_vs_harmonia.iter().cloned().fold(f64::INFINITY, f64::min),
        rs_vs_harmonia.iter().cloned().fold(0.0, f64::max),
    );

    // Crossover: windowed RadixSpline vs hash join.
    let hash_series: Vec<(f64, f64)> = unpart
        .iter()
        .map(|(gib, reports)| (*gib, reports[0].queries_per_second()))
        .collect();
    let rs_series: Vec<(f64, f64)> = cfg
        .sweep_gib
        .iter()
        .map(|&gib| {
            let r = make_r(cfg, gib);
            let s = make_s(cfg, &r);
            let q = run_point(
                &spec,
                &r,
                &s,
                JoinStrategy::WindowedInlj {
                    index: IndexKind::RadixSpline,
                    window_tuples: cfg.window_tuples,
                },
            )
            .queries_per_second();
            (gib, q)
        })
        .collect();
    let s_gib = (cfg.s_tuples as u64 * 8 * cfg.scale.factor) as f64 / (1u64 << 30) as f64;
    let (crossover, crossover_sel) = match crossover_gib(&hash_series, &rs_series) {
        Some(x) => (num(x), num(100.0 * s_gib / x)),
        None => (serde_json::Value::Null, serde_json::Value::Null),
    };

    let rows = vec![
        vec![
            json!("transfer-volume reduction (hash / partitioned RadixSpline)"),
            num(transfer_reduction),
            json!("up to 12x"),
        ],
        vec![
            json!(format!(
                "TLB throughput drop undone at {biggest_gib:.0} GiB (binary search)"
            )),
            num(tlb_drop),
            json!("up to 16.7x"),
        ],
        vec![
            json!(format!(
                "best INLJ speedup over hash join at {biggest_gib:.0} GiB"
            )),
            num(speedup),
            json!("3-10x"),
        ],
        vec![
            json!("RadixSpline vs Harmonia (min over sweep)"),
            num(rs_h_min),
            json!("1.1x"),
        ],
        vec![
            json!("RadixSpline vs Harmonia (max over sweep)"),
            num(rs_h_max),
            json!("1.8x"),
        ],
        vec![
            json!("INLJ-beats-hash crossover (GiB, windowed RadixSpline)"),
            crossover,
            json!("6.2 GiB"),
        ],
        vec![
            json!("crossover selectivity (%)"),
            crossover_sel,
            json!("8.0 %"),
        ],
    ];

    Experiment {
        id: "summary".into(),
        title: "§6 discussion claims: measured vs paper".into(),
        columns: vec!["claim".into(), "measured".into(), "paper".into()],
        rows,
        notes: vec![
            "Measured values are cost-model estimates at the reproduction \
             scale; the targets are shapes and factors, not testbed-exact \
             numbers."
                .into(),
        ],
    }
}
