//! What-if study beyond the paper's evaluation: the GH200's NVLink C2C
//! (450 GB/s, Table 1) against the paper's V100 + NVLink 2.0 platform.

use super::{crossover_gib, make_r, make_s, run_point};
use crate::config::ExpConfig;
use crate::output::{num, Experiment};
use serde_json::json;
use windex_core::prelude::*;

/// Sweep the V100 and GH200 platforms over R.
pub fn whatif_gh200(cfg: &ExpConfig) -> Experiment {
    let specs = [
        ("V100+NVLink2", GpuSpec::v100_nvlink2(cfg.scale)),
        ("GH200+C2C", GpuSpec::gh200(cfg.scale)),
    ];
    let strategies = [
        (
            "windowed-inlj(radix-spline)",
            JoinStrategy::WindowedInlj {
                index: IndexKind::RadixSpline,
                window_tuples: cfg.window_tuples,
            },
        ),
        ("hash-join", JoinStrategy::HashJoin),
    ];

    let mut columns = vec!["R (GiB)".to_string()];
    for (plat, _) in &specs {
        for (name, _) in &strategies {
            columns.push(format!("Q/s {plat} {name}"));
        }
    }

    let mut series: Vec<Vec<Vec<(f64, f64)>>> =
        vec![vec![Vec::new(); strategies.len()]; specs.len()];
    let mut rows = Vec::new();
    for &gib in &cfg.sweep_gib {
        let r = make_r(cfg, gib);
        let s = make_s(cfg, &r);
        let mut row = vec![json!(gib)];
        for (pi, (_, spec)) in specs.iter().enumerate() {
            for (si, (_, st)) in strategies.iter().enumerate() {
                let qps = run_point(spec, &r, &s, *st).queries_per_second();
                series[pi][si].push((gib, qps));
                row.push(num(qps));
            }
        }
        rows.push(row);
    }

    let last = cfg.sweep_gib.len() - 1;
    let mut notes = vec![format!(
        "GH200 speedup at {:.0} GiB — INLJ: {:.1}x, hash join: {:.1}x. The \
         450 GB/s link lifts both, but the table scan stays O(|R|): the \
         index join's advantage persists on next-generation interconnects.",
        cfg.sweep_gib[last],
        series[1][0][last].1 / series[0][0][last].1,
        series[1][1][last].1 / series[0][1][last].1,
    )];
    for (pi, (plat, _)) in specs.iter().enumerate() {
        if let Some(x) = crossover_gib(&series[pi][1], &series[pi][0]) {
            notes.push(format!(
                "{plat}: INLJ overtakes the hash join at ~{x:.1} GiB"
            ));
        }
    }

    Experiment {
        id: "whatif-gh200".into(),
        title: "What-if: GH200 NVLink C2C vs V100 NVLink 2.0 (Q/s)".into(),
        columns,
        rows,
        notes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gh200_lifts_both_sides() {
        let mut cfg = ExpConfig::quick();
        cfg.s_tuples = 1 << 10;
        cfg.sweep_gib = vec![48.0];
        let exp = whatif_gh200(&cfg);
        let row = &exp.rows[0];
        let v100_inlj = row[1].as_f64().unwrap();
        let v100_hash = row[2].as_f64().unwrap();
        let gh_inlj = row[3].as_f64().unwrap();
        let gh_hash = row[4].as_f64().unwrap();
        assert!(gh_inlj > 2.0 * v100_inlj, "INLJ {v100_inlj} -> {gh_inlj}");
        assert!(gh_hash > 1.5 * v100_hash, "hash {v100_hash} -> {gh_hash}");
    }
}
