//! `experiments` — regenerate the paper's tables and figures.
//!
//! ```text
//! experiments [--quick] [--charts] [--out DIR] [--jobs N] <target>...
//!
//! targets:
//!   all          every table, figure, ablation, and the summary
//!   table1       interconnect bandwidth overview
//!   fig1         transfer volume: full scan vs index range scan
//!   fig3 fig4    unpartitioned INLJ sweep (throughput / TLB translations)
//!   fig5 fig6    partitioned-keys sweep (throughput / % eliminated)
//!   fig7         window-size sweep
//!   fig8         Zipf-skewed lookup keys
//!   fig9         V100+NVLink2 vs A100+PCIe4
//!   serve        latency-throughput: cross-query window batching
//!   chaos        serving resilience KPIs under fault windows (writes
//!                BENCH_chaos.json; gates vs the committed copy)
//!   cluster      multi-GPU sharded serving: 1→8 GPU scaling over priced
//!                interconnects plus targeted device-loss recovery (writes
//!                BENCH_cluster.json; gates vs the committed copy)
//!   tuner        online plan auto-tuning vs every static plan on a mixed
//!                1/64 GiB tenant trace (writes BENCH_tuner.json; gates vs
//!                the committed copy)
//!   requests     per-request span-tree stage KPIs across every serving
//!                layer (writes BENCH_requests.json; gates vs the
//!                committed copy)
//!   baseline     deterministic perf baseline (writes BENCH_baseline.json)
//!   regress      CI gate: re-run the baseline matrix, diff against the
//!                committed BENCH_baseline.json with tolerance bands
//!   simperf      simulator throughput: simulated accesses per wall-clock
//!                second over the baseline matrix (writes
//!                BENCH_simperf.json; gates vs the committed copy)
//!   observe      export Perfetto traces, TLB/L2 residency heatmaps, and
//!                an OpenMetrics snapshot from seeded runs
//!   whatif-gh200 GH200 NVLink C2C what-if (beyond the paper)
//!   validate-scale  same paper point at reduction factors 256x-2048x
//!   summary      §6 discussion claims, measured vs paper
//!   ablations    every ablation below
//!   ablation-bits | ablation-overlap | ablation-pages |
//!   ablation-node-size | ablation-fanout | ablation-keydist |
//!   ablation-warm | ablation-spill | ablation-subwarp
//! ```

use std::path::{Path, PathBuf};
use windex_bench::experiments::{
    ablations, baseline, chaos, cluster, fig1, fig7, fig8, fig9, figs34, figs56, observe, regress,
    requests, serve, simperf, summary, table1, tuner, validate, whatif,
};
use windex_bench::{ExpConfig, Experiment};

fn emit(exp: Experiment, out: &Path, charts: bool) {
    print!("{}", exp.render_text());
    if charts {
        if let Some(chart) = windex_bench::chart::render_chart(&exp) {
            print!("{chart}");
        }
    }
    println!();
    if let Err(e) = exp.write(out) {
        eprintln!("warning: could not write {}: {e}", exp.id);
    }
}

fn run_target(target: &str, cfg: &ExpConfig) -> Result<Vec<Experiment>, String> {
    Ok(match target {
        "table1" => vec![table1::table1()],
        "fig1" => vec![fig1::fig1(cfg)],
        "fig3" => {
            let sweep = figs34::unpartitioned_sweep(cfg);
            vec![figs34::fig3_from(&sweep)]
        }
        "fig4" => {
            let sweep = figs34::unpartitioned_sweep(cfg);
            vec![figs34::fig4_from(&sweep)]
        }
        "fig5" | "fig6" => figs56::figs56(cfg),
        "fig7" => vec![fig7::fig7(cfg)],
        "fig8" => vec![fig8::fig8(cfg)],
        "fig9" => vec![fig9::fig9(cfg)],
        "summary" => vec![summary::summary(cfg)],
        "ablations" => ablations::all(cfg),
        "ablation-bits" => vec![ablations::ablation_bits(cfg)],
        "ablation-overlap" => vec![ablations::ablation_overlap(cfg)],
        "ablation-pages" => vec![ablations::ablation_pages(cfg)],
        "ablation-node-size" => vec![ablations::ablation_node_size(cfg)],
        "ablation-fanout" => vec![ablations::ablation_fanout(cfg)],
        "ablation-keydist" => vec![ablations::ablation_keydist(cfg)],
        "ablation-warm" => vec![ablations::ablation_warm(cfg)],
        "ablation-spill" => vec![ablations::ablation_spill(cfg)],
        "ablation-subwarp" => vec![ablations::ablation_subwarp(cfg)],
        "whatif-gh200" => vec![whatif::whatif_gh200(cfg)],
        "validate-scale" => vec![validate::validate_scale(cfg)],
        "serve" => vec![serve::serve(cfg)],
        "baseline" => vec![baseline::baseline(cfg)],
        "observe" => vec![observe::observe(cfg)],
        "regress" => vec![regress::regress(cfg)?],
        "simperf" => vec![simperf::simperf(cfg)?],
        "chaos" => vec![chaos::chaos(cfg)?],
        "cluster" => vec![cluster::cluster(cfg)?],
        "tuner" => vec![tuner::tuner(cfg)?],
        "requests" => vec![requests::requests(cfg)?],
        "all" => {
            let mut out = vec![table1::table1(), fig1::fig1(cfg)];
            let unpart = figs34::unpartitioned_sweep(cfg);
            out.push(figs34::fig3_from(&unpart));
            out.push(figs34::fig4_from(&unpart));
            let part = figs56::partitioned_sweep(cfg);
            out.extend(figs56::figs56_from(&unpart, &part));
            out.push(fig7::fig7(cfg));
            out.push(fig8::fig8(cfg));
            out.push(fig9::fig9(cfg));
            out.extend(ablations::all(cfg));
            out.push(serve::serve(cfg));
            out.push(whatif::whatif_gh200(cfg));
            out.push(validate::validate_scale(cfg));
            out.push(summary::summary(cfg));
            out
        }
        other => return Err(format!("unknown target '{other}'")),
    })
}

fn main() {
    let mut quick = false;
    let mut charts = false;
    let mut out_dir: Option<PathBuf> = None;
    let mut jobs: usize = 1;
    let mut serve_threads: usize = 4;
    let mut targets: Vec<String> = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--quick" => quick = true,
            "--charts" => charts = true,
            "--out" => {
                out_dir = Some(PathBuf::from(args.next().unwrap_or_else(|| {
                    eprintln!("--out requires a directory");
                    std::process::exit(2);
                })));
            }
            "--jobs" => {
                jobs = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .filter(|&n| n >= 1)
                    .unwrap_or_else(|| {
                        eprintln!("--jobs requires a positive integer");
                        std::process::exit(2);
                    });
            }
            "--serve-threads" => {
                serve_threads = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .filter(|&n| n >= 1)
                    .unwrap_or_else(|| {
                        eprintln!("--serve-threads requires a positive integer");
                        std::process::exit(2);
                    });
            }
            "--help" | "-h" => {
                println!(
                    "usage: experiments [--quick] [--charts] [--out DIR] [--jobs N] [--serve-threads N] <target>..."
                );
                println!("targets: all table1 fig1 fig3 fig4 fig5 fig6 fig7 fig8 fig9 serve chaos cluster tuner requests baseline regress simperf observe whatif-gh200 validate-scale");
                println!("         summary ablations ablation-{{bits,overlap,pages,node-size,fanout,keydist,warm,spill,subwarp}}");
                println!("--jobs N runs the seed-matrix targets (baseline, regress, simperf) on N worker threads; reports are byte-identical for any N");
                println!("--serve-threads N sets simperf's tenant-parallel serve point (1 thread is always measured too; outcomes must byte-match)");
                return;
            }
            t => targets.push(t.to_string()),
        }
    }
    if targets.is_empty() {
        targets.push("all".to_string());
    }

    let mut cfg = ExpConfig::from_env(quick);
    if let Some(dir) = out_dir {
        cfg.out_dir = dir;
    }
    cfg.jobs = jobs;
    cfg.serve_threads = serve_threads;
    println!(
        "windex experiments — scale 1:{} ({}), S = 2^{} tuples, sweep {:?} GiB\n",
        cfg.scale.factor,
        if cfg.quick { "quick" } else { "full" },
        cfg.s_tuples.trailing_zeros(),
        cfg.sweep_gib,
    );

    let started = std::time::Instant::now();
    for target in &targets {
        match run_target(target, &cfg) {
            Ok(exps) => {
                for exp in exps {
                    emit(exp, &cfg.out_dir, charts);
                }
            }
            Err(e) => {
                eprintln!("error: {e}");
                std::process::exit(2);
            }
        }
    }
    println!(
        "done in {:.1}s; results in {}",
        started.elapsed().as_secs_f64(),
        cfg.out_dir.display()
    );
}
