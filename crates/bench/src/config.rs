//! Experiment configuration: paper-faithful defaults and a quick mode.

use std::path::PathBuf;
use windex_sim::Scale;

/// Shared knobs of all experiments.
#[derive(Debug, Clone)]
pub struct ExpConfig {
    /// Reproduction scale (default 1024×: 1 paper-GiB ≡ 1 sim-MiB).
    pub scale: Scale,
    /// Probe-relation size in simulated tuples. The paper fixes S at 2²⁶
    /// tuples (512 MiB); scaled that is 2¹⁶.
    pub s_tuples: usize,
    /// Indexed-relation sizes to sweep, in paper GiB. The paper scales R
    /// over 2²⁶–2³³·⁹ tuples (0.5–120 GiB).
    pub sweep_gib: Vec<f64>,
    /// Window size in simulated tuples for windowed strategies outside the
    /// Fig. 7 sweep. The paper settles on 32 MiB = 2²² tuples (§5.2.2);
    /// scaled that is 2¹².
    pub window_tuples: usize,
    /// R size (paper GiB) for the fixed-size experiments (Figs. 7–9 use
    /// 100 GiB).
    pub fixed_r_gib: f64,
    /// Where result files are written.
    pub out_dir: PathBuf,
    /// Reduced sweep for CI / `cargo bench`.
    pub quick: bool,
    /// Worker threads for the seed-matrix targets (`baseline`, `regress`,
    /// `simperf`). Matrix cells are independent deterministic simulations
    /// (one fresh `Gpu` each), merged in fixed cell order — so any job
    /// count produces byte-identical reports.
    pub jobs: usize,
    /// Worker threads for `simperf`'s tenant-parallel serve axis (the
    /// multi-thread point; 1 thread is always measured too). Lanes are
    /// independent per-tenant simulations merged in fixed tenant order, so
    /// any thread count produces byte-identical outcomes — simperf fails
    /// if they ever diverge.
    pub serve_threads: usize,
}

impl ExpConfig {
    /// The paper-faithful configuration.
    pub fn full() -> Self {
        ExpConfig {
            scale: Scale::PAPER,
            s_tuples: 1 << 16,
            sweep_gib: vec![
                0.5, 1.0, 2.0, 4.0, 8.0, 16.0, 24.0, 32.0, 48.0, 64.0, 88.0, 111.0,
            ],
            window_tuples: 1 << 12,
            fixed_r_gib: 100.0,
            out_dir: PathBuf::from("results"),
            quick: false,
            jobs: 1,
            serve_threads: 4,
        }
    }

    /// Reduced configuration: smaller probe side and a 5-point sweep.
    pub fn quick() -> Self {
        ExpConfig {
            scale: Scale::PAPER,
            s_tuples: 1 << 13,
            sweep_gib: vec![1.0, 8.0, 32.0, 64.0, 111.0],
            window_tuples: 1 << 12,
            fixed_r_gib: 64.0,
            out_dir: PathBuf::from("results"),
            quick: true,
            jobs: 1,
            serve_threads: 4,
        }
    }

    /// Pick full or quick from a flag / the `WINDEX_QUICK` env var.
    pub fn from_env(quick_flag: bool) -> Self {
        if quick_flag || std::env::var_os("WINDEX_QUICK").is_some() {
            Self::quick()
        } else {
            Self::full()
        }
    }

    /// Zipf exponents of the Fig. 8 sweep (0–1.75).
    pub fn zipf_exponents(&self) -> Vec<f64> {
        if self.quick {
            vec![0.0, 1.0, 1.75]
        } else {
            vec![0.0, 0.25, 0.5, 0.75, 1.0, 1.25, 1.5, 1.75]
        }
    }

    /// Window sizes of the Fig. 7 sweep, in simulated tuples
    /// (paper: 2¹⁸–2²⁶ tuples = 2–512 MiB; scaled: 2⁸–2¹⁶).
    pub fn window_sweep(&self) -> Vec<usize> {
        let range = if self.quick {
            (8..=16).step_by(2)
        } else {
            (8..=16).step_by(1)
        };
        range.map(|p| 1usize << p).collect()
    }
}
