//! # windex-bench — experiment harness
//!
//! Regenerates every table and figure of the paper's evaluation plus the
//! ablations listed in `DESIGN.md`. Each experiment produces an
//! [`Experiment`] value that is printed as an aligned text table and
//! written to `results/<id>.csv` and `results/<id>.json`.
//!
//! Run `cargo run --release -p windex-bench --bin experiments -- all`
//! (add `--quick` for a reduced sweep; `cargo bench` uses the quick mode).

#![warn(missing_docs)]

pub mod chart;
pub mod config;
pub mod experiments;
pub mod export;
pub mod output;

pub use config::ExpConfig;
pub use output::Experiment;
