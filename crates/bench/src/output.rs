//! Experiment result rendering and persistence.

use serde::Serialize;
use serde_json::Value;
use std::fmt::Write as _;
use std::path::Path;

/// One regenerated table or figure: a column header plus data rows, with
/// free-form notes (observations mirrored against the paper's).
#[derive(Debug, Clone, Serialize)]
pub struct Experiment {
    /// Stable identifier, e.g. `"fig3"`.
    pub id: String,
    /// Human title, e.g. `"Fig. 3: query throughput, unpartitioned INLJ"`.
    pub title: String,
    /// Column names; the first column is the x axis.
    pub columns: Vec<String>,
    /// Data rows; `Value::Null` marks a missing / DNF point.
    pub rows: Vec<Vec<Value>>,
    /// Observations and caveats recorded alongside the data.
    pub notes: Vec<String>,
}

fn fmt_cell(v: &Value) -> String {
    match v {
        Value::Null => "—".to_string(),
        Value::Number(n) => {
            if let Some(f) = n.as_f64() {
                if n.is_i64() || n.is_u64() {
                    n.to_string()
                } else if f != 0.0 && f.abs() < 0.01 {
                    format!("{f:.2e}")
                } else {
                    format!("{f:.3}")
                }
            } else {
                n.to_string()
            }
        }
        Value::String(s) => s.clone(),
        other => other.to_string(),
    }
}

impl Experiment {
    /// Render as an aligned text table with the title and notes.
    pub fn render_text(&self) -> String {
        let mut grid: Vec<Vec<String>> = vec![self.columns.clone()];
        for row in &self.rows {
            grid.push(row.iter().map(fmt_cell).collect());
        }
        let cols = self.columns.len();
        let mut widths = vec![0usize; cols];
        for row in &grid {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.chars().count());
            }
        }
        let mut out = String::new();
        let _ = writeln!(out, "== {} — {} ==", self.id, self.title);
        for (ri, row) in grid.iter().enumerate() {
            let mut line = String::new();
            for (i, cell) in row.iter().enumerate() {
                let pad = widths[i].saturating_sub(cell.chars().count());
                if i > 0 {
                    line.push_str("  ");
                }
                // Right-align data, left-align the first (x) column.
                if i == 0 {
                    line.push_str(cell);
                    line.push_str(&" ".repeat(pad));
                } else {
                    line.push_str(&" ".repeat(pad));
                    line.push_str(cell);
                }
            }
            out.push_str(line.trim_end());
            out.push('\n');
            if ri == 0 {
                let total: usize = widths.iter().sum::<usize>() + 2 * (cols - 1);
                out.push_str(&"-".repeat(total));
                out.push('\n');
            }
        }
        for note in &self.notes {
            let _ = writeln!(out, "  note: {note}");
        }
        out
    }

    /// Render as CSV (notes become trailing `# comment` lines).
    pub fn render_csv(&self) -> String {
        let mut out = String::new();
        let esc = |s: &str| {
            if s.contains([',', '"', '\n']) {
                format!("\"{}\"", s.replace('"', "\"\""))
            } else {
                s.to_string()
            }
        };
        let _ = writeln!(
            out,
            "{}",
            self.columns
                .iter()
                .map(|c| esc(c))
                .collect::<Vec<_>>()
                .join(",")
        );
        for row in &self.rows {
            let cells: Vec<String> = row
                .iter()
                .map(|v| match v {
                    Value::Null => String::new(),
                    Value::String(s) => esc(s),
                    other => other.to_string(),
                })
                .collect();
            let _ = writeln!(out, "{}", cells.join(","));
        }
        for note in &self.notes {
            let _ = writeln!(out, "# {note}");
        }
        out
    }

    /// Write `<id>.csv` and `<id>.json` into `dir` (created if needed).
    pub fn write(&self, dir: &Path) -> std::io::Result<()> {
        std::fs::create_dir_all(dir)?;
        std::fs::write(dir.join(format!("{}.csv", self.id)), self.render_csv())?;
        std::fs::write(
            dir.join(format!("{}.json", self.id)),
            serde_json::to_string_pretty(self).expect("experiment serializes"),
        )?;
        Ok(())
    }
}

/// Round to 3 decimals for stable, readable output files.
pub fn num(v: f64) -> Value {
    if !v.is_finite() {
        return Value::Null;
    }
    let r = (v * 1000.0).round() / 1000.0;
    serde_json::json!(r)
}

/// A number with scientific formatting preserved (per-lookup counters).
pub fn num6(v: f64) -> Value {
    if !v.is_finite() {
        return Value::Null;
    }
    let r = (v * 1e6).round() / 1e6;
    serde_json::json!(r)
}

#[cfg(test)]
mod tests {
    use super::*;
    use serde_json::json;

    fn sample() -> Experiment {
        Experiment {
            id: "figX".into(),
            title: "sample".into(),
            columns: vec!["x".into(), "a".into()],
            rows: vec![vec![json!(1), num(0.5)], vec![json!(2), Value::Null]],
            notes: vec!["a note".into()],
        }
    }

    #[test]
    fn text_render_contains_all_cells() {
        let t = sample().render_text();
        assert!(t.contains("figX"));
        assert!(t.contains("0.5"));
        assert!(t.contains("—"));
        assert!(t.contains("note: a note"));
    }

    #[test]
    fn csv_render() {
        let c = sample().render_csv();
        let mut lines = c.lines();
        assert_eq!(lines.next(), Some("x,a"));
        assert_eq!(lines.next(), Some("1,0.5"));
        assert_eq!(lines.next(), Some("2,"));
        assert_eq!(lines.next(), Some("# a note"));
    }

    #[test]
    fn write_creates_files() {
        let dir = std::env::temp_dir().join("windex-output-test");
        let _ = std::fs::remove_dir_all(&dir);
        sample().write(&dir).unwrap();
        assert!(dir.join("figX.csv").exists());
        assert!(dir.join("figX.json").exists());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn num_rounds_and_handles_nan() {
        assert_eq!(num(1.23456), json!(1.235));
        assert_eq!(num(f64::NAN), Value::Null);
        assert_eq!(num(f64::INFINITY), Value::Null);
    }
}
