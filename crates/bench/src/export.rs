//! Chrome-trace-event export: load a run's timeline into Perfetto.
//!
//! Aggregate reports say what a run cost; a timeline says *when*. This
//! module renders the workspace's observability artifacts — the query
//! executor's [`PhaseBreakdown`] and [`WindowSpan`] timeline, the server's
//! [`BatchSpan`] timeline, and the simulator's recorded [`Trace`] (kernel
//! launches, faults, retries, TLB flushes) — as a Chrome trace-event JSON
//! file (`chrome://tracing` / [Perfetto](https://ui.perfetto.dev) both load
//! it directly).
//!
//! # Time axis
//!
//! The simulator has no wall clock; every timestamp here is **virtual
//! time** from the cost model. Phase and window spans carry serial time
//! estimates, so they are laid end to end in recorded order. Discrete
//! trace events (faults, retries, launches) carry no timestamps of their
//! own, so they are placed *sequence-proportionally*: event `i` of `n`
//! lands at `i/n` of the run's span. That preserves ordering and density —
//! enough to see a fault storm or a launch cadence — without pretending to
//! sub-span accuracy.
//!
//! Timestamps are integer microseconds, so the export is byte-deterministic
//! per seed (pinned by the exporter-determinism tests).

use serde_json::Value;
use windex_core::{DegradationEvent, QueryReport};
use windex_serve::{ClusterReport, ServeEvent, ServerReport};
use windex_sim::{Trace, TraceEvent};

/// Process id used for every emitted event (one run = one process).
const PID: u64 = 1;

/// Build a JSON object from ordered pairs (the shim's `Object` preserves
/// insertion order, which keeps the export deterministic).
fn obj(pairs: Vec<(&str, Value)>) -> Value {
    Value::Object(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
}

fn us(seconds: f64) -> u64 {
    (seconds * 1e6).round().max(0.0) as u64
}

/// Incrementally builds a Chrome trace-event file.
struct ChromeTrace {
    events: Vec<Value>,
}

impl ChromeTrace {
    fn new() -> Self {
        ChromeTrace { events: Vec::new() }
    }

    /// Name a thread (track) in the viewer.
    fn thread_name(&mut self, tid: u64, name: &str) {
        self.events.push(obj(vec![
            ("name", Value::from("thread_name")),
            ("ph", Value::from("M")),
            ("pid", Value::from(PID)),
            ("tid", Value::from(tid)),
            ("args", obj(vec![("name", Value::from(name))])),
        ]));
    }

    /// A complete (`ph:"X"`) span.
    fn complete(&mut self, tid: u64, name: &str, cat: &str, ts_us: u64, dur_us: u64, args: Value) {
        self.events.push(obj(vec![
            ("name", Value::from(name)),
            ("cat", Value::from(cat)),
            ("ph", Value::from("X")),
            ("pid", Value::from(PID)),
            ("tid", Value::from(tid)),
            ("ts", Value::from(ts_us)),
            ("dur", Value::from(dur_us)),
            ("args", args),
        ]));
    }

    /// An instant (`ph:"i"`) event, thread-scoped.
    fn instant(&mut self, tid: u64, name: &str, cat: &str, ts_us: u64, args: Value) {
        self.events.push(obj(vec![
            ("name", Value::from(name)),
            ("cat", Value::from(cat)),
            ("ph", Value::from("i")),
            ("s", Value::from("t")),
            ("pid", Value::from(PID)),
            ("tid", Value::from(tid)),
            ("ts", Value::from(ts_us)),
            ("args", args),
        ]));
    }

    /// An async-begin (`ph:"b"`) event. Async spans pair by
    /// `(cat, id, name)` and may nest or overlap freely across tracks,
    /// which is what a fan-out request needs.
    fn async_begin(&mut self, tid: u64, name: &str, cat: &str, id: u64, ts_us: u64, args: Value) {
        self.events.push(obj(vec![
            ("name", Value::from(name)),
            ("cat", Value::from(cat)),
            ("ph", Value::from("b")),
            ("id", Value::from(format!("{id:#x}"))),
            ("pid", Value::from(PID)),
            ("tid", Value::from(tid)),
            ("ts", Value::from(ts_us)),
            ("args", args),
        ]));
    }

    /// The async-end (`ph:"e"`) matching an [`async_begin`](Self::async_begin).
    fn async_end(&mut self, tid: u64, name: &str, cat: &str, id: u64, ts_us: u64) {
        self.events.push(obj(vec![
            ("name", Value::from(name)),
            ("cat", Value::from(cat)),
            ("ph", Value::from("e")),
            ("id", Value::from(format!("{id:#x}"))),
            ("pid", Value::from(PID)),
            ("tid", Value::from(tid)),
            ("ts", Value::from(ts_us)),
        ]));
    }

    /// A flow event: `ph` is `"s"` (start), `"t"` (step), or `"f"`
    /// (finish). Flows with one `(cat, id, name)` draw arrows between the
    /// slices enclosing their timestamps, linking a coordinator span to
    /// its shard legs across tracks.
    fn flow(&mut self, ph: &str, tid: u64, name: &str, cat: &str, id: u64, ts_us: u64) {
        debug_assert!(matches!(ph, "s" | "t" | "f"), "not a flow phase: {ph}");
        let mut pairs = vec![
            ("name", Value::from(name)),
            ("cat", Value::from(cat)),
            ("ph", Value::from(ph)),
            ("id", Value::from(format!("{id:#x}"))),
            ("pid", Value::from(PID)),
            ("tid", Value::from(tid)),
            ("ts", Value::from(ts_us)),
        ];
        if ph == "f" {
            // Bind the arrow head to the enclosing slice, not the next one.
            pairs.push(("bp", Value::from("e")));
        }
        self.events.push(obj(pairs));
    }

    fn finish(self) -> Value {
        obj(vec![
            ("traceEvents", Value::Array(self.events)),
            ("displayTimeUnit", Value::from("ms")),
        ])
    }
}

/// Lay the simulator's discrete trace events (launches, faults, retries,
/// TLB flushes) onto `[0, total_us]` sequence-proportionally, on `tid`.
fn place_sim_events(ct: &mut ChromeTrace, tid: u64, trace: &Trace, total_us: u64) {
    let events = trace.events();
    let n = events.len().max(1) as u64;
    for (i, ev) in events.iter().enumerate() {
        let ts = total_us * i as u64 / n;
        match ev {
            TraceEvent::KernelLaunch => {
                ct.instant(tid, "kernel_launch", "kernel", ts, obj(vec![]));
            }
            TraceEvent::TlbFlush => {
                ct.instant(tid, "tlb_flush", "tlb", ts, obj(vec![]));
            }
            TraceEvent::Fault { kind } => {
                ct.instant(
                    tid,
                    "fault",
                    "fault",
                    ts,
                    obj(vec![("kind", Value::from(format!("{kind:?}")))]),
                );
            }
            TraceEvent::Retry {
                attempt,
                backoff_ns,
            } => {
                ct.instant(
                    tid,
                    "retry",
                    "fault",
                    ts,
                    obj(vec![
                        ("attempt", Value::from(*attempt)),
                        ("backoff_ns", Value::from(*backoff_ns)),
                    ]),
                );
            }
            // Line/translate traffic is aggregated by the heatmaps; as
            // individual instants it would swamp the viewer.
            _ => {}
        }
    }
    if trace.dropped_events() > 0 {
        ct.instant(
            tid,
            "trace_truncated",
            "meta",
            total_us,
            obj(vec![
                ("dropped_events", Value::from(trace.dropped_events())),
                ("recorded_events", Value::from(trace.recorded().events)),
            ]),
        );
    }
}

/// Render one executed query as a Chrome trace. Tracks: the whole run,
/// the per-phase breakdown, the per-window timeline, degradation events,
/// and the simulator's discrete trace events.
pub fn query_chrome_trace(report: &QueryReport, trace: &Trace) -> Value {
    let mut ct = ChromeTrace::new();
    ct.thread_name(0, "run");
    ct.thread_name(1, "phases");
    ct.thread_name(2, "windows");
    ct.thread_name(3, "degradation");
    ct.thread_name(4, "sim events");

    // The run track uses the serial phase-sum duration so the phase track
    // tiles it exactly.
    let total_us = us(report.phases.total_est_s).max(1);
    ct.complete(
        0,
        &report.strategy,
        "run",
        0,
        total_us,
        obj(vec![
            ("r_tuples", Value::from(report.r_tuples)),
            ("s_tuples", Value::from(report.s_tuples)),
            ("result_tuples", Value::from(report.result_tuples)),
            ("retries", Value::from(report.retries)),
        ]),
    );

    // Phases end to end, in first-recorded order (serial estimates are
    // additive by construction).
    let mut cursor = 0u64;
    for p in &report.phases.phases {
        let dur = us(p.time.total_s);
        ct.complete(
            1,
            p.phase,
            "phase",
            cursor,
            dur,
            obj(vec![
                ("spans", Value::from(p.spans)),
                ("tlb_misses", Value::from(p.counters.tlb_misses)),
                ("ic_bytes", Value::from(p.counters.ic_bytes_total())),
            ]),
        );
        cursor += dur;
    }

    // Window timeline end to end (windowed plans only).
    let mut wcursor = 0u64;
    for w in &report.window_timeline {
        let dur = us(w.est_s);
        ct.complete(
            2,
            &format!("window {}", w.window),
            "window",
            wcursor,
            dur,
            obj(vec![
                ("keys", Value::from(w.keys)),
                ("matches", Value::from(w.matches)),
                ("tlb_misses", Value::from(w.counters.tlb_misses)),
            ]),
        );
        wcursor += dur;
    }

    // Degradations, sequence-proportional across the run.
    let nd = report.degradations.len().max(1) as u64;
    for (i, d) in report.degradations.iter().enumerate() {
        let name = match d {
            DegradationEvent::WindowShrunk { .. } => "window_shrunk",
            DegradationEvent::PartitionDegradedToWindow { .. } => "partition_degraded",
            DegradationEvent::ResultsSpilledToCpu => "results_spilled",
            DegradationEvent::HashBuildChunked { .. } => "hash_build_chunked",
            DegradationEvent::FellBackToHashJoin => "fell_back_to_hash_join",
            DegradationEvent::DeviceLossRecovered { .. } => "device_loss_recovered",
        };
        ct.instant(
            3,
            name,
            "degradation",
            total_us * (i as u64 + 1) / (nd + 1),
            obj(vec![("detail", Value::from(format!("{d:?}")))]),
        );
    }

    place_sim_events(&mut ct, 4, trace, total_us);
    ct.finish()
}

/// Render one served trace as a Chrome trace. Tracks: the whole run, the
/// per-dispatch batch timeline (real `at_s` timestamps), serving events,
/// and the per-phase breakdown.
pub fn server_chrome_trace(report: &ServerReport) -> Value {
    let mut ct = ChromeTrace::new();
    ct.thread_name(0, "run");
    ct.thread_name(1, "batches");
    ct.thread_name(2, "serve events");
    ct.thread_name(3, "phases");

    let total_us = us(report.virtual_makespan_s).max(1);
    ct.complete(
        0,
        &report.policy,
        "run",
        0,
        total_us,
        obj(vec![
            ("tenants", Value::from(report.tenants)),
            ("requests", Value::from(report.requests)),
            ("completed", Value::from(report.completed)),
            ("shed", Value::from(report.shed)),
        ]),
    );

    // Batches carry real virtual-clock timestamps.
    for b in &report.batches {
        ct.complete(
            1,
            &format!("batch {}", b.batch),
            "batch",
            us(b.at_s),
            us(b.est_s).max(1),
            obj(vec![
                ("keys", Value::from(b.keys)),
                ("windows", Value::from(b.windows)),
                ("completed", Value::from(b.completed)),
                ("tlb_misses", Value::from(b.counters.tlb_misses)),
            ]),
        );
    }

    // Serving events have no timestamps of their own: sequence-proportional.
    let ne = report.events.len().max(1) as u64;
    for (i, e) in report.events.iter().enumerate() {
        let name = match e {
            ServeEvent::WindowShrunk { .. } => "window_shrunk",
            ServeEvent::SinkSpilledToCpu => "sink_spilled",
            ServeEvent::LoadShed { .. } => "load_shed",
            ServeEvent::BatchAbandoned { .. } => "batch_abandoned",
            ServeEvent::CircuitShed { .. } => "circuit_shed",
            ServeEvent::CircuitOpened { .. } => "circuit_opened",
            ServeEvent::CircuitClosed { .. } => "circuit_closed",
            ServeEvent::DispatchRetried { .. } => "dispatch_retried",
            ServeEvent::RetriesExhausted { .. } => "retries_exhausted",
            ServeEvent::DeviceLossRecovered { .. } => "device_loss_recovered",
        };
        ct.instant(
            2,
            name,
            "serve",
            total_us * (i as u64 + 1) / (ne + 1),
            obj(vec![("detail", Value::from(format!("{e:?}")))]),
        );
    }

    let mut cursor = 0u64;
    for p in &report.phases.phases {
        let dur = us(p.time.total_s);
        ct.complete(
            3,
            p.phase,
            "phase",
            cursor,
            dur,
            obj(vec![("spans", Value::from(p.spans))]),
        );
        cursor += dur;
    }
    ct.finish()
}

/// Track id hosting shard `g`'s leg slices in the request-tree export.
fn leg_tid(gpu: usize) -> u64 {
    100 + gpu as u64
}

/// Render a cluster run's per-request span trees as a Chrome trace:
/// each request is an async (`b`/`e`) span on the coordinator track, each
/// shard leg an `X` slice on its GPU's track, and a flow chain
/// (`s` → `t` → `f`) links the coordinator span through every leg back to
/// the merge point, so Perfetto draws the fan-out/merge arrows.
pub fn cluster_request_chrome_trace(report: &ClusterReport) -> Value {
    let mut ct = ChromeTrace::new();
    ct.thread_name(0, "requests");
    for g in 0..report.gpus {
        ct.thread_name(leg_tid(g), &format!("gpu {g} legs"));
    }
    for t in &report.traces {
        let name = format!("request {}", t.request);
        let end_us = us(t.completed_s).max(us(t.submitted_s));
        ct.async_begin(
            0,
            &name,
            "request",
            t.trace_id,
            us(t.submitted_s),
            obj(vec![
                ("trace_id", Value::from(format!("{:#x}", t.trace_id))),
                ("tenant", Value::from(t.tenant as u64)),
                ("outcome", Value::from(format!("{:?}", t.outcome))),
                ("keys", Value::from(t.keys)),
                ("matches", Value::from(t.matches)),
                ("queue_s", Value::from(t.stages.queue_s)),
                ("batch_s", Value::from(t.stages.batch_s)),
                ("service_s", Value::from(t.stages.service_s)),
                ("merge_s", Value::from(t.stages.merge_s)),
                ("other_s", Value::from(t.stages.other_s)),
            ]),
        );
        for (i, leg) in t.legs.iter().enumerate() {
            let tid = leg_tid(leg.shard);
            let flow_name = format!("r{} flow", t.request);
            ct.flow(
                "s",
                0,
                &flow_name,
                "fanout",
                leg.span_id,
                us(leg.enqueued_s),
            );
            ct.complete(
                tid,
                &format!("r{} leg {}", t.request, leg.shard),
                "leg",
                us(leg.dispatched_s),
                (us(leg.done_s).saturating_sub(us(leg.dispatched_s))).max(1),
                obj(vec![
                    ("keys", Value::from(leg.keys)),
                    ("matches", Value::from(leg.matches)),
                    ("remote", Value::from(leg.remote)),
                    ("delivered_s", Value::from(leg.delivered_s)),
                    ("critical", Value::from(t.critical_leg == Some(i))),
                ]),
            );
            ct.flow(
                "t",
                tid,
                &flow_name,
                "fanout",
                leg.span_id,
                us(leg.dispatched_s),
            );
            ct.flow(
                "f",
                0,
                &flow_name,
                "fanout",
                leg.span_id,
                us(leg.delivered_s),
            );
        }
        ct.async_end(0, &name, "request", t.trace_id, end_us);
    }
    ct.finish()
}

/// Serialize a Chrome trace [`Value`] as the canonical on-disk bytes
/// (pretty-printed, trailing newline).
pub fn chrome_trace_json(trace: &Value) -> String {
    let mut text = serde_json::to_string_pretty(trace).expect("trace serializes");
    text.push('\n');
    text
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sequence_proportional_placement_is_monotone() {
        let mut ct = ChromeTrace::new();
        let mut t = Trace::with_capacity(16);
        for _ in 0..4 {
            t.record(TraceEvent::KernelLaunch);
        }
        place_sim_events(&mut ct, 0, &t, 1000);
        let ts: Vec<u64> = ct
            .events
            .iter()
            .map(|e| e.get("ts").and_then(Value::as_u64).unwrap())
            .collect();
        assert_eq!(ts, vec![0, 250, 500, 750]);
    }

    #[test]
    fn truncated_traces_are_flagged_in_the_export() {
        let mut ct = ChromeTrace::new();
        let mut t = Trace::new(2, windex_sim::TraceMode::Ring);
        for _ in 0..10 {
            t.record(TraceEvent::KernelLaunch);
        }
        t.normalize();
        place_sim_events(&mut ct, 0, &t, 100);
        let names: Vec<&str> = ct
            .events
            .iter()
            .filter_map(|e| e.get("name").and_then(Value::as_str))
            .collect();
        assert!(names.contains(&"trace_truncated"));
    }
}
