//! # windex-core — windowed partitioning for out-of-core GPU index joins
//!
//! The paper's primary contribution and the query engine that measures it.
//!
//! **Problem** (§3): an index-nested loop join probing a CPU-resident index
//! over a fast interconnect collapses once the indexed relation outgrows
//! the GPU TLB's covered range — random traversals thrash the shared TLB,
//! and every miss costs a ~3 µs address-translation round trip.
//!
//! **Fix 1** (§4): radix-partition the lookup keys so neighbouring threads
//! traverse neighbouring paths; but that materializes the probe input.
//!
//! **Fix 2 — the contribution** (§5): partition *inside tumbling windows*
//! of the probe stream. Locality is restored per window, nothing is
//! materialized beyond one window, and the pipeline keeps streaming.
//!
//! ```
//! use windex_core::prelude::*;
//!
//! let mut gpu = Gpu::new(GpuSpec::v100_nvlink2(Scale::PAPER));
//! let r = Relation::unique_sorted(1 << 14, KeyDistribution::SparseUniform, 42);
//! let s = Relation::foreign_keys_uniform(&r, 1 << 10, 7);
//! let report = QueryExecutor::new()
//!     .run(&mut gpu, &r, &s, JoinStrategy::WindowedInlj {
//!         index: IndexKind::RadixSpline,
//!         window_tuples: 1 << 8,
//!     })
//!     .unwrap();
//! assert_eq!(report.result_tuples, 1 << 10);
//! ```

#![warn(missing_docs)]

pub mod error;
pub mod query;
pub mod session;
pub mod strategy;
pub mod streams;
pub mod tuner;
pub mod window;

pub use error::WindexError;
pub use query::{DegradationEvent, QueryError, QueryExecutor, QueryReport};
pub use session::{IndexCheckpoint, QuerySession, MAX_DEVICE_LOSS_RECOVERIES};
pub use strategy::{BuiltIndex, IndexConfigs, JoinStrategy};
pub use streams::StreamingWindowJoin;
pub use tuner::{
    candidate_prior_s_per_key, default_candidates, CandidatePlan, KpiSample, OnlineTuner,
    TuneEvent, TuneReason, TunerConfig,
};
pub use window::{
    windowed_inlj, windowed_inlj_observed, WindowConfig, WindowObserver, WindowSpan, WindowStats,
};

/// One-stop imports for downstream users.
pub mod prelude {
    pub use crate::error::WindexError;
    pub use crate::query::{DegradationEvent, QueryError, QueryExecutor, QueryReport};
    pub use crate::session::{IndexCheckpoint, QuerySession, MAX_DEVICE_LOSS_RECOVERIES};
    pub use crate::strategy::{BuiltIndex, IndexConfigs, JoinStrategy};
    pub use crate::streams::StreamingWindowJoin;
    pub use crate::tuner::{
        candidate_prior_s_per_key, default_candidates, CandidatePlan, KpiSample, OnlineTuner,
        TuneEvent, TuneReason, TunerConfig,
    };
    pub use crate::window::{
        windowed_inlj, windowed_inlj_observed, WindowConfig, WindowObserver, WindowSpan,
        WindowStats,
    };
    pub use windex_index::{IndexKind, OutOfCoreIndex};
    pub use windex_join::PartitionBits;
    pub use windex_sim::{
        phase, ChaosScenario, ChaosSchedule, Counters, Gpu, GpuSpec, InterconnectSpec, MemLocation,
        PhaseBreakdown, PhaseRecorder, Scale,
    };
    pub use windex_workload::{join_selectivity, KeyDistribution, Relation};
}
