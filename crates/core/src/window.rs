//! The partitioning window operator — the paper's contribution (§5).
//!
//! Fully partitioning the lookup keys (§4) removes TLB thrashing but
//! materializes the probe input, which partitioned joins are criticized for
//! (§2.3). The partitioning window restores pipelining: the probe stream is
//! divided on-the-fly into disjoint fixed-size batches — *tumbling windows*
//! — and each window is radix-partitioned and joined before the stream
//! continues. Neither join input is materialized beyond one window's worth
//! of GPU memory, yet lookups within a window are key-ordered, so the GPU
//! TLB hit rate stays high.
//!
//! A window closes when it reaches capacity or the probe side is exhausted
//! (§5.1). Any partitioning operator and INLJ variant can be plugged in; as
//! suggested by the paper, this implementation uses the SWWC radix
//! partitioner and the warp-per-32-tuples INLJ. The per-window kernels are
//! issued on two logical CUDA streams (concurrent kernel execution), which
//! the cost model turns into transfer/compute overlap.

use crate::error::WindexError;
use windex_index::OutOfCoreIndex;
use windex_join::{inlj_pairs, PartitionBits, RadixPartitioner, ResultSink};
use windex_sim::{phase, Buffer, CostModel, Counters, Gpu, PhaseRecorder};

/// Configuration of the windowed INLJ pipeline.
#[derive(Debug, Clone, Copy)]
pub struct WindowConfig {
    /// Window capacity in probe tuples. The paper sweeps 2¹⁸–2²⁶ tuples
    /// (2–512 MiB) in Fig. 7 and settles on 32 MiB (2²² tuples) for the
    /// remaining experiments; at the default 1024× reproduction scale those
    /// are 2⁸–2¹⁶ and 2¹² tuples.
    pub window_tuples: usize,
    /// Radix bit range used inside each window (§4.2).
    pub bits: PartitionBits,
    /// Smallest key of the indexed relation (anchors the bit range).
    pub min_key: u64,
}

/// Outcome of one windowed-INLJ run. Serializable so serving-layer
/// reports ([`windex-serve`]'s `ServerReport`) can embed it on the
/// existing JSON/CSV output path.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, serde::Serialize)]
pub struct WindowStats {
    /// Number of windows processed.
    pub windows: usize,
    /// Total matches materialized.
    pub matches: usize,
}

/// One entry in a windowed run's per-window timeline: which window, how
/// many probe keys it held, the counter events it generated, and the serial
/// time the cost model assigns those events. Timeline entries tile the
/// windowed region of the run, so their counter deltas sum to the portion
/// of the run total spent inside windows.
#[derive(Debug, Clone, Copy, Default, serde::Serialize)]
pub struct WindowSpan {
    /// Zero-based window index within the run.
    pub window: usize,
    /// Probe keys processed by this window.
    pub keys: usize,
    /// Matches this window materialized.
    pub matches: usize,
    /// Counter events attributed to this window (partition + probe).
    pub counters: Counters,
    /// Serial (non-overlapped) cost-model estimate for this window, in
    /// seconds.
    pub est_s: f64,
}

/// Optional observation hooks for [`windowed_inlj_observed`]: a phase
/// recorder that attributes each window's partition/probe work to the
/// canonical phases, and a timeline that receives one [`WindowSpan`] per
/// closed window. Either hook (or both) may be absent; the default
/// observer observes nothing and costs nothing.
#[derive(Debug, Default)]
pub struct WindowObserver<'a> {
    /// Phase recorder to mark `partition`/`lookup` spans on, if any.
    pub phases: Option<&'a mut PhaseRecorder>,
    /// Timeline receiving one entry per closed window, if any.
    pub timeline: Option<&'a mut Vec<WindowSpan>>,
}

/// Run the windowed INLJ: stream `s[range]` through tumbling windows of
/// `config.window_tuples`, radix-partitioning each window and probing
/// `index` with the partition-ordered pairs. Matches land in `sink` as
/// `(absolute probe rid, index position)`. Each window's partitioned pairs
/// are released before the next window opens, so at most one window of
/// device memory is held; operator faults and capacity errors surface as
/// typed errors after bounded retries.
pub fn windowed_inlj(
    gpu: &mut Gpu,
    index: &dyn OutOfCoreIndex,
    s: &Buffer<u64>,
    range: std::ops::Range<usize>,
    config: WindowConfig,
    sink: &mut ResultSink,
) -> Result<WindowStats, WindexError> {
    windowed_inlj_observed(
        gpu,
        index,
        s,
        range,
        config,
        sink,
        WindowObserver::default(),
    )
}

/// [`windowed_inlj`] with observation: identical join semantics (and
/// identical counter trace — observation only snapshots, never touches),
/// but each window's partition and probe work is marked on the observer's
/// phase recorder and appended to its timeline.
#[allow(clippy::too_many_arguments)]
pub fn windowed_inlj_observed(
    gpu: &mut Gpu,
    index: &dyn OutOfCoreIndex,
    s: &Buffer<u64>,
    range: std::ops::Range<usize>,
    config: WindowConfig,
    sink: &mut ResultSink,
    mut obs: WindowObserver<'_>,
) -> Result<WindowStats, WindexError> {
    if config.window_tuples == 0 {
        return Err(WindexError::InvalidConfig(
            "window must hold at least one tuple",
        ));
    }
    let cost = obs.timeline.is_some().then(|| CostModel::new(gpu.spec()));
    let partitioner = RadixPartitioner::new(config.bits, config.min_key);
    let mut windows = 0;
    let mut matches = 0;
    let mut at = range.start;
    while at < range.end {
        // Close the window at capacity or at end-of-stream (§5.1).
        let end = (at + config.window_tuples).min(range.end);
        let w0 = gpu.snapshot();
        if let Some(rec) = obs.phases.as_deref_mut() {
            rec.begin(gpu, phase::PARTITION);
        }
        let window = partitioner.partition_stream(gpu, s, at..end)?;
        if let Some(rec) = obs.phases.as_deref_mut() {
            rec.begin(gpu, phase::LOOKUP);
        }
        let probed = inlj_pairs(gpu, index, &window.pairs, 0..window.len(), sink);
        window.free(gpu);
        if let Some(rec) = obs.phases.as_deref_mut() {
            rec.end(gpu);
        }
        let window_matches = probed?;
        if let Some(timeline) = obs.timeline.as_deref_mut() {
            let delta = gpu.snapshot() - w0;
            let est_s = cost
                .as_ref()
                .map(|c| c.estimate(&delta, false).total_s)
                .unwrap_or(0.0);
            timeline.push(WindowSpan {
                window: windows,
                keys: end - at,
                matches: window_matches,
                counters: delta,
                est_s,
            });
        }
        matches += window_matches;
        windows += 1;
        at = end;
    }
    Ok(WindowStats { windows, matches })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::rc::Rc;
    use windex_index::BinarySearchIndex;
    use windex_join::inlj_stream;
    use windex_sim::{GpuSpec, MemLocation, Scale};

    fn gpu() -> Gpu {
        Gpu::new(GpuSpec::v100_nvlink2(Scale::PAPER))
    }

    fn fixture(g: &mut Gpu, n_r: usize, n_s: usize) -> (BinarySearchIndex, Buffer<u64>, Vec<u64>) {
        let r_keys: Vec<u64> = (0..n_r as u64).map(|i| i * 3).collect();
        let data = Rc::new(g.alloc_host_from_vec(r_keys));
        let idx = BinarySearchIndex::new(data);
        let s_keys: Vec<u64> = (0..n_s as u64)
            .map(|i| (i * 2654435761 % n_r as u64) * 3)
            .collect();
        let s = g.alloc_host_from_vec(s_keys.clone());
        (idx, s, s_keys)
    }

    fn config(window: usize) -> WindowConfig {
        WindowConfig {
            window_tuples: window,
            bits: PartitionBits { shift: 4, bits: 8 },
            min_key: 0,
        }
    }

    #[test]
    fn windowed_result_equals_unwindowed() {
        let mut g = gpu();
        let (idx, s, _) = fixture(&mut g, 50_000, 10_000);
        let mut direct = ResultSink::with_capacity(&mut g, 10_000, MemLocation::Gpu).unwrap();
        inlj_stream(&mut g, &idx, &s, 0..10_000, &mut direct).unwrap();

        let mut windowed = ResultSink::with_capacity(&mut g, 10_000, MemLocation::Gpu).unwrap();
        let stats =
            windowed_inlj(&mut g, &idx, &s, 0..10_000, config(1024), &mut windowed).unwrap();
        assert_eq!(stats.windows, 10); // ceil(10000 / 1024)
        assert_eq!(stats.matches, direct.len());

        let mut a = direct.host_pairs();
        let mut b = windowed.host_pairs();
        a.sort_unstable();
        b.sort_unstable();
        assert_eq!(a, b);
    }

    #[test]
    fn window_count_matches_capacity_rule() {
        let mut g = gpu();
        let (idx, s, _) = fixture(&mut g, 1000, 100);
        let mut sink = ResultSink::with_capacity(&mut g, 100, MemLocation::Gpu).unwrap();
        // Exactly divisible.
        let st = windowed_inlj(&mut g, &idx, &s, 0..100, config(25), &mut sink).unwrap();
        assert_eq!(st.windows, 4);
        sink.clear();
        // Final partial window.
        let st = windowed_inlj(&mut g, &idx, &s, 0..100, config(30), &mut sink).unwrap();
        assert_eq!(st.windows, 4);
        sink.clear();
        // One giant window degenerates to the fully-partitioned join.
        let st = windowed_inlj(&mut g, &idx, &s, 0..100, config(1 << 20), &mut sink).unwrap();
        assert_eq!(st.windows, 1);
    }

    #[test]
    fn memory_footprint_is_one_window() {
        // The pipeline never allocates more than ~one window of GPU pairs
        // at a time; with tiny windows the partitioned buffers stay small.
        let mut g = gpu();
        let (idx, s, _) = fixture(&mut g, 10_000, 5000);
        let mut sink = ResultSink::with_capacity(&mut g, 5000, MemLocation::Gpu).unwrap();
        let st = windowed_inlj(&mut g, &idx, &s, 0..5000, config(128), &mut sink).unwrap();
        assert_eq!(st.windows, 40);
        assert_eq!(st.matches, 5000);
    }

    #[test]
    fn sub_range_uses_absolute_rids() {
        let mut g = gpu();
        let (idx, s, s_keys) = fixture(&mut g, 1000, 500);
        let mut sink = ResultSink::with_capacity(&mut g, 500, MemLocation::Gpu).unwrap();
        windowed_inlj(&mut g, &idx, &s, 200..300, config(32), &mut sink).unwrap();
        for (srid, rpos) in sink.host_pairs() {
            assert!((200..300).contains(&(srid as usize)));
            assert_eq!(rpos * 3, s_keys[srid as usize]);
        }
    }

    #[test]
    fn observed_timeline_tiles_the_run() {
        use windex_sim::{Counters, PhaseRecorder};
        let mut g = gpu();
        let (idx, s, _) = fixture(&mut g, 10_000, 2000);
        let mut sink = ResultSink::with_capacity(&mut g, 2000, MemLocation::Gpu).unwrap();
        let mut rec = PhaseRecorder::start(&g);
        let mut timeline = Vec::new();
        let before = g.snapshot();
        let st = windowed_inlj_observed(
            &mut g,
            &idx,
            &s,
            0..2000,
            config(256),
            &mut sink,
            WindowObserver {
                phases: Some(&mut rec),
                timeline: Some(&mut timeline),
            },
        )
        .unwrap();
        let total = g.snapshot() - before;
        assert_eq!(timeline.len(), st.windows);
        assert_eq!(timeline.iter().map(|w| w.keys).sum::<usize>(), 2000);
        assert_eq!(
            timeline.iter().map(|w| w.matches).sum::<usize>(),
            st.matches
        );
        assert!(timeline.iter().all(|w| w.est_s > 0.0));
        let sum = timeline
            .iter()
            .fold(Counters::default(), |a, w| a + w.counters);
        assert_eq!(sum, total, "window deltas tile the windowed region");
        let bd = rec.finish(&g);
        assert_eq!(bd.total, total);
        assert_eq!(bd.counter_sum(), bd.total, "span-sum invariant");
        assert!(bd.get(windex_sim::phase::PARTITION).is_some());
        assert!(bd.get(windex_sim::phase::LOOKUP).is_some());
    }

    #[test]
    fn empty_stream() {
        let mut g = gpu();
        let (idx, s, _) = fixture(&mut g, 100, 10);
        let mut sink = ResultSink::with_capacity(&mut g, 10, MemLocation::Gpu).unwrap();
        let st = windowed_inlj(&mut g, &idx, &s, 5..5, config(4), &mut sink).unwrap();
        assert_eq!(st.windows, 0);
        assert_eq!(st.matches, 0);
    }
}
