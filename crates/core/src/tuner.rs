//! Online cost-based strategy & window auto-tuner (ROADMAP item 2).
//!
//! The paper's central result is regime-dependence: the hash join wins while
//! the indexed relation streams comfortably over the interconnect, the
//! windowed INLJ wins out-of-core where TLB thrash kills random probes. A
//! served tenant sits somewhere on that curve — and moves. This module
//! closes the loop the measurement layers opened: per tenant, an
//! [`OnlineTuner`] maintains a sliding horizon of observed KPIs
//! ([`KpiSample`]: translations/lookup, TLB-miss rate, phase shares,
//! matches/key, realized seconds/key) and, at batch boundaries, picks the
//! next `{strategy, window_tuples, partition bits}` from a candidate set
//! ([`CandidatePlan`]) by cost-model argmin.
//!
//! Three disciplines keep it sane:
//!
//! - **Hysteresis** — a switch needs both a minimum dwell (batches since
//!   the last switch) and a relative improvement over the incumbent's
//!   estimate, so estimate noise never causes flip-flopping.
//! - **Bounded ε-greedy exploration** — with probability ε (counter-indexed
//!   splitmix64 draws, the same determinism discipline as
//!   `windex-serve::resilience`), the tuner runs one batch on a
//!   non-incumbent candidate to refresh a stale estimate — but only
//!   candidates whose current estimate is within [`TunerConfig::explore_bound`]
//!   of the incumbent are eligible, so it never re-probes a plan the cost
//!   model prices as catastrophic (e.g. hash-joining a 64 GiB tenant).
//!   Exploration lasts exactly one batch; the next decision returns to the
//!   argmin without dwell.
//! - **Pinning** — a degradation-ladder step (window shrink, spill, device
//!   loss) pins the tuner to its current plan until
//!   [`TunerConfig::pin_batches`] healthy batches pass: while the ladder is
//!   active, measurements describe the degraded regime, not the plan.
//!
//! Estimates start from an analytic prior ([`candidate_prior_s_per_key`])
//! priced through the *same* [`CostModel`] path as measured runs
//! ([`CandidateProfile`]), then converge to the realized per-key cost as
//! batches are observed. Every decision is a pure function of (seed,
//! observation sequence): same trace ⇒ byte-identical [`TuneEvent`] stream.

use crate::query::QueryReport;
use crate::strategy::JoinStrategy;
use serde::Serialize;
use std::collections::VecDeque;
use windex_index::IndexKind;
use windex_sim::{phase, CandidateProfile, CostModel};

#[inline]
fn splitmix64(seed: u64) -> u64 {
    let mut z = seed.wrapping_add(0x9e3779b97f4a7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
    z ^ (z >> 31)
}

/// Uniform f64 in `(0, 1]` from one counter-indexed hash draw.
#[inline]
fn unit(seed: u64, salt: u64, seq: u64) -> f64 {
    let h = splitmix64(seed ^ salt.wrapping_mul(0x9e3779b97f4a7c15) ^ seq);
    ((h >> 11) as f64 + 1.0) / (1u64 << 53) as f64
}

const SALT_EXPLORE: u64 = 0x74756e65; // "tune"
const SALT_PICK: u64 = 0x7069636b; // "pick"

/// One point in the tuner's plan space: a join strategy plus the partition
/// bit budget the §4.2 selection rule may spend on it.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct CandidatePlan {
    /// The execution plan.
    pub strategy: JoinStrategy,
    /// Upper bound on partition bits for the radix partitioner (the §4.2
    /// rule selects at most this many). Irrelevant for the hash join.
    pub max_partition_bits: u32,
}

impl CandidatePlan {
    /// Display label, e.g. `"windowed-inlj(radix-spline, w=4096)|bits<=11"`.
    pub fn label(&self) -> String {
        match self.strategy {
            JoinStrategy::HashJoin => self.strategy.label(),
            _ => format!(
                "{}|bits<={}",
                self.strategy.label(),
                self.max_partition_bits
            ),
        }
    }
}

/// The default candidate set: the hash join, the windowed INLJ over the
/// RadixSpline at two window sizes and two partition-bit budgets, and the
/// windowed INLJ over binary search (the index-family alternative).
pub fn default_candidates() -> Vec<CandidatePlan> {
    let rs = |window_tuples: usize, max_partition_bits: u32| CandidatePlan {
        strategy: JoinStrategy::WindowedInlj {
            index: IndexKind::RadixSpline,
            window_tuples,
        },
        max_partition_bits,
    };
    vec![
        CandidatePlan {
            strategy: JoinStrategy::HashJoin,
            max_partition_bits: 11,
        },
        rs(4096, 11),
        rs(1024, 11),
        rs(4096, 9),
        CandidatePlan {
            strategy: JoinStrategy::WindowedInlj {
                index: IndexKind::BinarySearch,
                window_tuples: 4096,
            },
            max_partition_bits: 11,
        },
    ]
}

/// Analytic prior for a candidate's per-key cost on a tenant with
/// `r_tuples` staged tuples and `batch_keys`-key dispatches, priced through
/// [`CostModel::estimate_candidate`] — the same path that prices measured
/// runs, so priors and realized costs are directly comparable.
///
/// The streamed component is first-principles exact (a hash join's probe
/// pass streams all of R; the windowed INLJ streams the batch); the
/// per-key random-access and TLB constants are calibrated against the
/// committed BENCH_baseline.json regimes. Priors only need *ordinal*
/// correctness — realized measurements take over within one horizon.
pub fn candidate_prior_s_per_key(
    model: &CostModel,
    plan: &CandidatePlan,
    r_tuples: u64,
    batch_keys: u64,
) -> f64 {
    let keys = batch_keys.max(1);
    let r = r_tuples.max(1);
    let depth = (64 - r.leading_zeros()) as u64; // ~log2(r)
                                                 // Random interconnect cachelines per key after windowed partitioning:
                                                 // most traversal steps hit GPU caches; the RadixSpline's flat lookup
                                                 // leaves ~0.15 lines/key, comparison-heavy structures scale with depth.
    let lines_per_key_x100 = |kind: IndexKind| match kind {
        IndexKind::RadixSpline => 15,
        IndexKind::Harmonia => 10 + 2 * depth,
        IndexKind::BPlusTree => 10 + 3 * depth,
        IndexKind::BinarySearch => 5 * depth,
    };
    let profile = match plan.strategy {
        JoinStrategy::HashJoin => CandidateProfile {
            keys,
            // Build on the batch, probe by streaming all of R.
            streamed_bytes: (r + keys) * 8,
            gpu_bytes: (r + keys) * 16,
            compute_ops: (r + keys) * 2,
            kernel_launches: 4,
            ..CandidateProfile::default()
        },
        JoinStrategy::Inlj { index } => CandidateProfile {
            keys,
            streamed_bytes: keys * 8,
            random_lines: keys * lines_per_key_x100(index) / 100,
            // Unwindowed probes thrash the shared TLB out-of-core (§3.3).
            thrash_tlb_misses: keys / 2,
            compute_ops: keys * 8,
            kernel_launches: 2,
            ..CandidateProfile::default()
        },
        JoinStrategy::PartitionedInlj { index } | JoinStrategy::WindowedInlj { index, .. } => {
            let window = match plan.strategy {
                JoinStrategy::WindowedInlj { window_tuples, .. } => window_tuples as u64,
                _ => keys,
            }
            .max(1);
            let windows = keys.div_ceil(window);
            let page = model.spec().page_bytes.max(1);
            CandidateProfile {
                keys,
                streamed_bytes: keys * 8,
                random_lines: keys * lines_per_key_x100(index) / 100,
                // Windowed partitioning restores locality: residual thrash
                // ~1.5% of lookups, plus one page sweep per window.
                thrash_tlb_misses: keys / 64,
                sweep_tlb_misses: windows * (window * 8).div_ceil(page),
                gpu_bytes: keys * 32,
                compute_ops: keys * 8,
                kernel_launches: windows * 3 + 1,
            }
        }
    };
    model.estimate_candidate(&profile, true).total_s / keys as f64
}

/// The observed-KPI vector for one dispatched batch, distilled from a
/// [`QueryReport`]. `seconds / keys` drives the estimates; the rest are
/// surfaced for observability and kept on the sliding horizon.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct KpiSample {
    /// Probe keys the batch carried.
    pub keys: u64,
    /// Cost-model estimate of the batch, in (paper-scale) seconds.
    pub seconds: f64,
    /// Address translations per lookup (Fig. 4's metric).
    pub translations_per_lookup: f64,
    /// TLB miss rate over the batch.
    pub tlb_miss_rate: f64,
    /// Share of the batch attributed to the partition phase.
    pub partition_share: f64,
    /// Share of the batch attributed to the lookup phase.
    pub lookup_share: f64,
    /// Join matches per probe key.
    pub matches_per_key: f64,
}

impl KpiSample {
    /// Distill the tuner's KPI vector from a batch report.
    pub fn from_report(rep: &QueryReport) -> Self {
        let keys = rep.s_tuples.max(1) as u64;
        KpiSample {
            keys,
            seconds: rep.time.total_s,
            translations_per_lookup: rep.translations_per_lookup(),
            tlb_miss_rate: 1.0 - rep.counters.tlb_hit_rate(),
            partition_share: rep.phases.share(phase::PARTITION),
            lookup_share: rep.phases.share(phase::LOOKUP),
            matches_per_key: rep.result_tuples as f64 / keys as f64,
        }
    }
}

/// Why the tuner changed (or pinned) its plan.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub enum TuneReason {
    /// Cost-model argmin beat the incumbent by the improvement threshold
    /// after the dwell window.
    Argmin,
    /// Seeded ε-greedy exploration of a non-incumbent candidate (one
    /// batch, bounded by `explore_bound`).
    Explore,
    /// A degradation-ladder step pinned the tuner to its current plan.
    Pinned,
    /// The pin expired after enough healthy batches; tuning resumed.
    Unpinned,
}

/// One tuner decision, in decision order. Same seed and observation
/// sequence ⇒ byte-identical event stream.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct TuneEvent {
    /// Batch ordinal (per tenant) at which the decision was taken.
    pub batch: u64,
    /// Why.
    pub reason: TuneReason,
    /// Incumbent plan label.
    pub from: String,
    /// Plan label after the decision (equals `from` for pin/unpin).
    pub to: String,
    /// Incumbent's estimated seconds/key at decision time.
    pub est_from_s_per_key: f64,
    /// Chosen plan's estimated seconds/key at decision time.
    pub est_to_s_per_key: f64,
}

/// Tuning discipline knobs. Defaults favour stability: switch only on a
/// 10 % modelled win after two quiet batches, explore 10 % of decisions
/// among candidates within 2× of the incumbent.
#[derive(Debug, Clone, Copy)]
pub struct TunerConfig {
    /// Seed of all exploration draws (counter-indexed splitmix64).
    pub seed: u64,
    /// Sliding-horizon length, in observed batches per candidate.
    pub horizon: usize,
    /// Minimum batches between argmin switches (hysteresis dwell).
    pub min_dwell_batches: u64,
    /// Relative improvement the argmin must show over the incumbent's
    /// estimate before a switch (e.g. `0.10` = 10 % better).
    pub improvement_threshold: f64,
    /// Probability of exploring a non-incumbent candidate at a decision.
    pub epsilon: f64,
    /// Exploration eligibility bound: only candidates with
    /// `est ≤ explore_bound × est[incumbent]` may be probed.
    pub explore_bound: f64,
    /// Healthy batches a degradation pin lasts.
    pub pin_batches: u64,
    /// Force the starting candidate (index into the candidate set) instead
    /// of the prior argmin — used by convergence tests to start wrong.
    pub initial_candidate: Option<usize>,
}

impl Default for TunerConfig {
    fn default() -> Self {
        TunerConfig {
            seed: 7,
            horizon: 4,
            min_dwell_batches: 2,
            improvement_threshold: 0.10,
            epsilon: 0.10,
            explore_bound: 2.0,
            pin_batches: 4,
            initial_candidate: None,
        }
    }
}

/// Per-tenant online tuner: observes batch KPIs, maintains per-candidate
/// cost estimates, and decides the next plan at each batch boundary.
#[derive(Debug)]
pub struct OnlineTuner {
    cfg: TunerConfig,
    candidates: Vec<CandidatePlan>,
    /// Current per-key estimate per candidate: the prior until observed,
    /// then the mean of the sliding horizon.
    est_s_per_key: Vec<f64>,
    samples: Vec<VecDeque<f64>>,
    kpis: VecDeque<KpiSample>,
    current: usize,
    batches: u64,
    last_switch_batch: u64,
    pinned_until_batch: Option<u64>,
    exploring_from: Option<usize>,
    switches: u64,
    explorations: u64,
    pinned_batches: u64,
    draw_seq: u64,
    est_err_sum: f64,
    est_err_n: u64,
    events: Vec<TuneEvent>,
}

impl OnlineTuner {
    /// Build a tuner over `candidates` with per-key `priors` (one per
    /// candidate, e.g. from [`candidate_prior_s_per_key`]). The starting
    /// plan is the prior argmin unless `cfg.initial_candidate` overrides it.
    ///
    /// # Panics
    /// If `candidates` is empty or `priors.len() != candidates.len()`.
    pub fn new(cfg: TunerConfig, candidates: Vec<CandidatePlan>, priors: Vec<f64>) -> Self {
        assert!(!candidates.is_empty(), "tuner needs at least one candidate");
        assert_eq!(
            candidates.len(),
            priors.len(),
            "one prior per candidate required"
        );
        let current = cfg
            .initial_candidate
            .unwrap_or_else(|| Self::argmin(&priors))
            .min(candidates.len() - 1);
        let n = candidates.len();
        OnlineTuner {
            cfg,
            candidates,
            est_s_per_key: priors,
            samples: vec![VecDeque::new(); n],
            kpis: VecDeque::new(),
            current,
            batches: 0,
            last_switch_batch: 0,
            pinned_until_batch: None,
            exploring_from: None,
            switches: 0,
            explorations: 0,
            pinned_batches: 0,
            draw_seq: 0,
            est_err_sum: 0.0,
            est_err_n: 0,
            events: Vec::new(),
        }
    }

    fn argmin(est: &[f64]) -> usize {
        let mut best = 0;
        for (i, &e) in est.iter().enumerate() {
            if e < est[best] {
                best = i;
            }
        }
        best
    }

    /// The plan the next batch should run.
    pub fn current(&self) -> CandidatePlan {
        self.candidates[self.current]
    }

    /// Label of the current plan.
    pub fn current_label(&self) -> String {
        self.candidates[self.current].label()
    }

    /// The candidate set, in fixed order.
    pub fn candidates(&self) -> &[CandidatePlan] {
        &self.candidates
    }

    /// Current per-key estimates, candidate-ordered.
    pub fn estimates(&self) -> &[f64] {
        &self.est_s_per_key
    }

    /// Argmin switches taken so far (explorations not counted).
    pub fn switch_count(&self) -> u64 {
        self.switches
    }

    /// Exploration batches taken so far.
    pub fn exploration_count(&self) -> u64 {
        self.explorations
    }

    /// Batches decided while a degradation pin was active.
    pub fn pinned_batch_count(&self) -> u64 {
        self.pinned_batches
    }

    /// Whether a degradation pin is currently active.
    pub fn is_pinned(&self) -> bool {
        self.pinned_until_batch.is_some()
    }

    /// Mean relative |estimated − realized| per-key cost error over all
    /// observed batches — the model-quality gauge the metrics expose.
    pub fn mean_cost_error(&self) -> f64 {
        if self.est_err_n == 0 {
            0.0
        } else {
            self.est_err_sum / self.est_err_n as f64
        }
    }

    /// Decision events so far, in decision order.
    pub fn events(&self) -> &[TuneEvent] {
        &self.events
    }

    /// The sliding KPI horizon (most recent last).
    pub fn recent_kpis(&self) -> &VecDeque<KpiSample> {
        &self.kpis
    }

    /// Feed the KPI sample of a batch executed under the current plan.
    pub fn observe(&mut self, sample: KpiSample) {
        let realized = sample.seconds / sample.keys.max(1) as f64;
        if realized.is_finite() && realized > 0.0 {
            let predicted = self.est_s_per_key[self.current];
            self.est_err_sum += (predicted - realized).abs() / realized;
            self.est_err_n += 1;
            let horizon = self.samples[self.current].len();
            if horizon >= self.cfg.horizon.max(1) {
                self.samples[self.current].pop_front();
            }
            self.samples[self.current].push_back(realized);
            let s = &self.samples[self.current];
            self.est_s_per_key[self.current] = s.iter().sum::<f64>() / s.len() as f64;
        }
        if self.kpis.len() >= self.cfg.horizon.max(1) {
            self.kpis.pop_front();
        }
        self.kpis.push_back(sample);
    }

    /// Pin the tuner to its current plan: a degradation-ladder step is
    /// active, so measurements describe the degraded regime. The pin lasts
    /// [`TunerConfig::pin_batches`] decisions and is refreshed by repeated
    /// calls (each degraded batch re-pins).
    pub fn pin(&mut self) {
        let was_pinned = self.pinned_until_batch.is_some();
        self.pinned_until_batch = Some(self.batches + self.cfg.pin_batches);
        if !was_pinned {
            let label = self.current_label();
            let est = self.est_s_per_key[self.current];
            self.events.push(TuneEvent {
                batch: self.batches,
                reason: TuneReason::Pinned,
                from: label.clone(),
                to: label,
                est_from_s_per_key: est,
                est_to_s_per_key: est,
            });
        }
    }

    fn switch_to(&mut self, to: usize, reason: TuneReason) {
        self.events.push(TuneEvent {
            batch: self.batches,
            reason,
            from: self.candidates[self.current].label(),
            to: self.candidates[to].label(),
            est_from_s_per_key: self.est_s_per_key[self.current],
            est_to_s_per_key: self.est_s_per_key[to],
        });
        self.current = to;
        self.last_switch_batch = self.batches;
    }

    /// Decide the plan for the next batch. Call once per batch boundary,
    /// after [`observe`](Self::observe).
    pub fn decide(&mut self) -> CandidatePlan {
        self.batches += 1;

        if let Some(until) = self.pinned_until_batch {
            if self.batches < until {
                self.pinned_batches += 1;
                return self.current();
            }
            self.pinned_until_batch = None;
            let label = self.current_label();
            let est = self.est_s_per_key[self.current];
            self.events.push(TuneEvent {
                batch: self.batches,
                reason: TuneReason::Unpinned,
                from: label.clone(),
                to: label,
                est_from_s_per_key: est,
                est_to_s_per_key: est,
            });
        }

        // An exploration lasts exactly one batch: return to the argmin over
        // all candidates (no dwell, no threshold — the probe is done).
        if let Some(_from) = self.exploring_from.take() {
            let best = Self::argmin(&self.est_s_per_key);
            if best != self.current {
                self.switch_to(best, TuneReason::Argmin);
            }
            return self.current();
        }

        // Hysteresis: no switch of any kind within the dwell window.
        if self.batches - self.last_switch_batch < self.cfg.min_dwell_batches {
            return self.current();
        }

        // Bounded ε-greedy exploration (counter-indexed draws).
        self.draw_seq += 1;
        if self.candidates.len() > 1
            && unit(self.cfg.seed, SALT_EXPLORE, self.draw_seq) < self.cfg.epsilon
        {
            let bound = self.cfg.explore_bound * self.est_s_per_key[self.current];
            let eligible: Vec<usize> = (0..self.candidates.len())
                .filter(|&i| i != self.current && self.est_s_per_key[i] <= bound)
                .collect();
            if !eligible.is_empty() {
                self.draw_seq += 1;
                let pick = eligible[(splitmix64(
                    self.cfg.seed ^ SALT_PICK.wrapping_mul(31) ^ self.draw_seq,
                ) % eligible.len() as u64) as usize];
                self.exploring_from = Some(self.current);
                self.explorations += 1;
                self.switch_to(pick, TuneReason::Explore);
                return self.current();
            }
        }

        // Cost-model argmin with improvement threshold.
        let best = Self::argmin(&self.est_s_per_key);
        if best != self.current
            && self.est_s_per_key[best]
                < self.est_s_per_key[self.current] * (1.0 - self.cfg.improvement_threshold)
        {
            self.switches += 1;
            self.switch_to(best, TuneReason::Argmin);
        }
        self.current()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use windex_sim::{GpuSpec, Scale};

    fn model() -> CostModel {
        CostModel::new(&GpuSpec::v100_nvlink2(Scale::PAPER))
    }

    fn sample(keys: u64, seconds: f64) -> KpiSample {
        KpiSample {
            keys,
            seconds,
            translations_per_lookup: 0.0,
            tlb_miss_rate: 0.0,
            partition_share: 0.0,
            lookup_share: 1.0,
            matches_per_key: 1.0,
        }
    }

    fn two_candidate_tuner(cfg: TunerConfig, priors: Vec<f64>) -> OnlineTuner {
        let candidates = vec![
            CandidatePlan {
                strategy: JoinStrategy::HashJoin,
                max_partition_bits: 11,
            },
            CandidatePlan {
                strategy: JoinStrategy::WindowedInlj {
                    index: IndexKind::RadixSpline,
                    window_tuples: 4096,
                },
                max_partition_bits: 11,
            },
        ];
        OnlineTuner::new(cfg, candidates, priors)
    }

    #[test]
    fn priors_rank_hash_first_in_core_and_windowed_out_of_core() {
        let m = model();
        let hash = CandidatePlan {
            strategy: JoinStrategy::HashJoin,
            max_partition_bits: 11,
        };
        let windowed = CandidatePlan {
            strategy: JoinStrategy::WindowedInlj {
                index: IndexKind::RadixSpline,
                window_tuples: 4096,
            },
            max_partition_bits: 11,
        };
        let batch = 1 << 15;
        // 1 paper GiB = 2^17 sim tuples: hash streams R cheaply.
        let small = 1u64 << 17;
        assert!(
            candidate_prior_s_per_key(&m, &hash, small, batch)
                < candidate_prior_s_per_key(&m, &windowed, small, batch)
        );
        // 64 paper GiB = 2^23 sim tuples: streaming R per batch is ruinous.
        let big = 1u64 << 23;
        assert!(
            candidate_prior_s_per_key(&m, &windowed, big, batch)
                < candidate_prior_s_per_key(&m, &hash, big, batch) / 4.0
        );
    }

    #[test]
    fn starts_at_prior_argmin_and_honors_override() {
        let t = two_candidate_tuner(TunerConfig::default(), vec![2.0, 1.0]);
        assert_eq!(t.current().label(), t.candidates()[1].label());
        let cfg = TunerConfig {
            initial_candidate: Some(0),
            ..TunerConfig::default()
        };
        let t = two_candidate_tuner(cfg, vec![2.0, 1.0]);
        assert_eq!(t.current().label(), t.candidates()[0].label());
    }

    #[test]
    fn converges_away_from_a_bad_start() {
        let cfg = TunerConfig {
            epsilon: 0.0,
            initial_candidate: Some(0),
            ..TunerConfig::default()
        };
        // Candidate 0 measures 10× worse than candidate 1's prior.
        let mut t = two_candidate_tuner(cfg, vec![1e-6, 1e-6]);
        for _ in 0..6 {
            t.observe(sample(1000, 0.01)); // 10 µs/key realized
            t.decide();
        }
        assert_eq!(t.current().label(), t.candidates()[1].label());
        assert_eq!(t.switch_count(), 1);
    }

    #[test]
    fn hysteresis_blocks_switches_within_dwell() {
        let cfg = TunerConfig {
            epsilon: 0.0,
            min_dwell_batches: 3,
            initial_candidate: Some(0),
            ..TunerConfig::default()
        };
        let mut t = two_candidate_tuner(cfg, vec![1.0, 0.1]);
        // Decisions 1 and 2 are inside the dwell window; 3 may switch.
        t.observe(sample(1, 1.0));
        t.decide();
        assert_eq!(t.current().label(), t.candidates()[0].label());
        t.observe(sample(1, 1.0));
        t.decide();
        assert_eq!(t.current().label(), t.candidates()[0].label());
        t.observe(sample(1, 1.0));
        t.decide();
        assert_eq!(t.current().label(), t.candidates()[1].label());
        // Argmin switch events respect the dwell spacing.
        let switches: Vec<u64> = t
            .events()
            .iter()
            .filter(|e| e.reason == TuneReason::Argmin)
            .map(|e| e.batch)
            .collect();
        assert_eq!(switches, vec![3]);
    }

    #[test]
    fn small_improvements_do_not_switch() {
        let cfg = TunerConfig {
            epsilon: 0.0,
            improvement_threshold: 0.10,
            initial_candidate: Some(0),
            ..TunerConfig::default()
        };
        // Candidate 1 is only 5 % better than the incumbent: below the
        // threshold, so the tuner must hold.
        let mut t = two_candidate_tuner(cfg, vec![1.0, 0.95]);
        for _ in 0..8 {
            t.observe(sample(1, 1.0));
            t.decide();
        }
        assert_eq!(t.current().label(), t.candidates()[0].label());
        assert_eq!(t.switch_count(), 0);
    }

    #[test]
    fn exploration_is_seed_deterministic_and_bounded() {
        let run = |seed: u64| {
            let cfg = TunerConfig {
                seed,
                epsilon: 0.5,
                ..TunerConfig::default()
            };
            // Candidate 0 is within the 2× bound of 1; a third wildly bad
            // candidate must never be explored.
            let candidates = vec![
                CandidatePlan {
                    strategy: JoinStrategy::HashJoin,
                    max_partition_bits: 11,
                },
                CandidatePlan {
                    strategy: JoinStrategy::WindowedInlj {
                        index: IndexKind::RadixSpline,
                        window_tuples: 4096,
                    },
                    max_partition_bits: 11,
                },
                CandidatePlan {
                    strategy: JoinStrategy::WindowedInlj {
                        index: IndexKind::BinarySearch,
                        window_tuples: 1024,
                    },
                    max_partition_bits: 11,
                },
            ];
            let mut t = OnlineTuner::new(cfg, candidates, vec![1.5, 1.0, 100.0]);
            let mut labels = Vec::new();
            for _ in 0..20 {
                t.observe(sample(1, 1.0));
                labels.push(t.decide().label());
            }
            (labels, t.exploration_count(), t.events().to_vec())
        };
        let (a_labels, a_explores, a_events) = run(42);
        let (b_labels, b_explores, b_events) = run(42);
        assert_eq!(a_labels, b_labels, "same seed ⇒ same decisions");
        assert_eq!(a_events, b_events, "same seed ⇒ same event stream");
        assert!(a_explores > 0, "ε=0.5 over 20 decisions must explore");
        assert_eq!(a_explores, b_explores);
        assert!(
            !a_labels.iter().any(|l| l.contains("binary-search")),
            "candidates outside the explore bound must never run: {a_labels:?}"
        );
        let (c_labels, ..) = run(43);
        assert_ne!(a_labels, c_labels, "different seeds must diverge");
    }

    #[test]
    fn pin_holds_plan_until_healthy_batches_pass() {
        let cfg = TunerConfig {
            epsilon: 0.0,
            pin_batches: 3,
            min_dwell_batches: 1,
            initial_candidate: Some(0),
            ..TunerConfig::default()
        };
        let mut t = two_candidate_tuner(cfg, vec![1.0, 0.001]);
        t.observe(sample(1, 1.0));
        t.pin();
        assert!(t.is_pinned());
        // Despite candidate 1 being 1000× better, the pin holds.
        for _ in 0..2 {
            t.decide();
            assert_eq!(t.current().label(), t.candidates()[0].label());
        }
        t.decide(); // pin expires here
        assert!(!t.is_pinned());
        t.observe(sample(1, 1.0));
        t.decide();
        assert_eq!(t.current().label(), t.candidates()[1].label());
        assert!(t.events().iter().any(|e| e.reason == TuneReason::Pinned));
        assert!(t.events().iter().any(|e| e.reason == TuneReason::Unpinned));
        assert!(t.pinned_batch_count() >= 2);
    }

    #[test]
    fn cost_error_tracks_estimate_quality() {
        let cfg = TunerConfig {
            epsilon: 0.0,
            ..TunerConfig::default()
        };
        // Prior says 1 µs/key, reality says 2 µs/key: first-batch relative
        // error is 0.5; after the estimate converges, later errors shrink.
        let mut t = two_candidate_tuner(cfg, vec![1e-6, 1e6]);
        t.observe(sample(1000, 2e-3));
        let first = t.mean_cost_error();
        assert!((first - 0.5).abs() < 1e-9, "first error {first}");
        for _ in 0..5 {
            t.observe(sample(1000, 2e-3));
        }
        assert!(t.mean_cost_error() < first);
    }
}
