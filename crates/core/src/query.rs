//! The query engine: runs a join strategy end-to-end and reports the
//! paper's metrics.
//!
//! Methodology follows §3.2: throughput is reported as queries per second
//! over the entire query run — including on-the-fly partitioning / hash
//! build and result materialization, but *not* index construction (the
//! index is assumed to exist). The memory system is cold at query start.

use crate::strategy::{IndexConfigs, JoinStrategy};
use crate::window::WindowSpan;
use windex_join::{HashJoinConfig, PartitionBits};
use windex_sim::{Counters, Gpu, MemLocation, PhaseBreakdown, TimeBreakdown};
use windex_workload::Relation;

/// Errors from the query engine.
#[derive(Debug, Clone, PartialEq, Eq, serde::Serialize)]
pub enum QueryError {
    /// INLJ strategies require the indexed relation to be sorted and
    /// duplicate-free.
    IndexedRelationNotSorted,
    /// The probe relation references keys outside the indexed key domain.
    /// Raised by [`QuerySession::new`](crate::session::QuerySession::new)
    /// when [`QueryExecutor::validate_foreign_keys`] is set (the default):
    /// the paper's workloads are foreign-key joins, so a probe key outside
    /// `[min(R), max(R)]` indicates a malformed workload.
    ForeignKeyViolation,
}

impl std::fmt::Display for QueryError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            QueryError::IndexedRelationNotSorted => {
                write!(f, "indexed relation must be sorted and unique")
            }
            QueryError::ForeignKeyViolation => write!(f, "probe key outside indexed domain"),
        }
    }
}

impl std::error::Error for QueryError {}

/// One step the engine took to keep a query running when device memory (or
/// an injected fault) would otherwise have failed it. Events are recorded
/// in [`QueryReport::degradations`] in the order they were applied.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize)]
pub enum DegradationEvent {
    /// The windowed INLJ's tumbling window was halved so one window of
    /// partitioned pairs fits the remaining device-memory headroom.
    WindowShrunk {
        /// Window capacity (probe tuples) before the shrink.
        from: usize,
        /// Window capacity after the shrink.
        to: usize,
    },
    /// A fully-partitioned INLJ could not materialize the whole probe side
    /// in device memory and was degraded to the windowed operator.
    PartitionDegradedToWindow {
        /// Window capacity chosen for the degraded plan.
        window_tuples: usize,
    },
    /// The result sink was placed in (or spilled to) CPU memory instead of
    /// the requested GPU memory.
    ResultsSpilledToCpu,
    /// The hash-join build side exceeded the device-memory headroom and was
    /// built in multiple passes over chunks of the build relation.
    HashBuildChunked {
        /// Number of build/probe passes used.
        passes: usize,
    },
    /// No index-join plan fit the device-memory budget; the engine fell
    /// back to the (self-chunking) no-partitioning hash join.
    FellBackToHashJoin,
    /// The device was lost mid-query (chaos device-loss window). The
    /// session waited out the outage on the virtual clock, rebuilt every
    /// staged index from the host-resident relation, and replayed the
    /// query from the top.
    DeviceLossRecovered {
        /// Mean-time-to-recovery on the virtual clock, in nanoseconds:
        /// outage wait (loss detection to window clearance) plus the
        /// cost-model estimate of the index rebuild.
        mttr_ns: u64,
    },
}

/// Everything measured about one query run.
#[derive(Debug, Clone, serde::Serialize)]
pub struct QueryReport {
    /// Strategy label (e.g. `"windowed-inlj(radix-spline, w=4096)"`).
    pub strategy: String,
    /// Index kind probed, if any.
    pub index: Option<windex_index::IndexKind>,
    /// Indexed-relation tuples (simulated).
    pub r_tuples: usize,
    /// Probe-relation tuples (simulated).
    pub s_tuples: usize,
    /// Paper-scale size of the indexed relation in GiB.
    pub paper_r_gib: f64,
    /// Join selectivity |S| / |R| (§3.2).
    pub selectivity: f64,
    /// Materialized result pairs.
    pub result_tuples: usize,
    /// Windows processed (0 for non-windowed strategies).
    pub windows: usize,
    /// Counter delta of the measured run.
    pub counters: Counters,
    /// Cost-model time estimate (paper scale).
    pub time: TimeBreakdown,
    /// Paper-scale bytes moved over the interconnect.
    pub transfer_volume_paper_bytes: u64,
    /// Auxiliary index footprint in simulated bytes (0 for hash join /
    /// binary search).
    pub index_aux_bytes: u64,
    /// Degradation steps applied to complete this query under memory
    /// pressure or injected faults, in application order. Empty for a
    /// fault-free run that fit the device budget.
    pub degradations: Vec<DegradationEvent>,
    /// Operator retries performed during the measured region (bounded by
    /// the simulator's retry policy; each retry's deterministic backoff is
    /// charged to the cost model).
    pub retries: u64,
    /// Window capacity actually used, if the executed plan was windowed —
    /// differs from the requested capacity after `WindowShrunk` events.
    pub effective_window_tuples: Option<usize>,
    /// Whether the materialized results ended up in CPU memory even though
    /// GPU memory was requested.
    pub result_spilled: bool,
    /// Per-phase decomposition of the measured region (partition, lookup,
    /// …). The span-sum invariant holds: `phases.counter_sum()` equals
    /// `counters`, including under degradation and injected faults.
    pub phases: PhaseBreakdown,
    /// Per-window timeline for windowed plans (empty otherwise): one entry
    /// per closed window with its keys, matches, counter delta, and serial
    /// time estimate.
    pub window_timeline: Vec<WindowSpan>,
}

impl QueryReport {
    /// Estimated queries per second — the y-axis of Figs. 3, 5, 7, 8, 9.
    pub fn queries_per_second(&self) -> f64 {
        self.time.queries_per_second()
    }

    /// Address-translation requests per lookup — the y-axis of Fig. 4.
    pub fn translations_per_lookup(&self) -> f64 {
        self.counters.translations_per_lookup()
    }
}

/// Configurable query runner.
#[derive(Debug, Clone)]
pub struct QueryExecutor {
    /// Concurrent kernel execution (§5.1): overlap interconnect-bound and
    /// GPU-bound time on two streams.
    pub overlap: bool,
    /// Where results are materialized (paper default: GPU memory, §3.2).
    pub result_location: MemLocation,
    /// Index build parameters.
    pub index_configs: IndexConfigs,
    /// Partition bit range; `None` applies the §4.2 selection rule with at
    /// most 11 bits (2048 partitions, as in §4.3.1).
    pub partition_bits: Option<PartitionBits>,
    /// Hash-join parameters.
    pub hash_join: HashJoinConfig,
    /// Flush TLB and caches before the measured run (paper methodology:
    /// each query is measured cold). Disable to study warm repetitions.
    pub cold_start: bool,
    /// Verify at session creation that every probe key lies inside the
    /// indexed relation's key domain (the paper's workloads are
    /// foreign-key joins). Violations surface as
    /// [`QueryError::ForeignKeyViolation`].
    pub validate_foreign_keys: bool,
}

impl Default for QueryExecutor {
    fn default() -> Self {
        QueryExecutor {
            overlap: true,
            result_location: MemLocation::Gpu,
            index_configs: IndexConfigs::default(),
            partition_bits: None,
            hash_join: HashJoinConfig::default(),
            cold_start: true,
            validate_foreign_keys: true,
        }
    }
}

impl QueryExecutor {
    /// Create an executor with paper-default settings.
    pub fn new() -> Self {
        Self::default()
    }

    /// Resolve the partition bit range for a given indexed relation.
    pub fn resolve_bits(&self, gpu: &Gpu, r: &Relation) -> PartitionBits {
        self.partition_bits.unwrap_or_else(|| {
            let domain = r.max_key().unwrap_or(0) - r.min_key().unwrap_or(0);
            PartitionBits::select(domain, r.len() as u64, gpu.spec(), 11)
        })
    }

    /// Run one query: `r` is the (indexed) build side, `s` the probe side.
    /// Returns the full measurement report.
    ///
    /// Each call stages the relations and builds the index afresh — the
    /// right semantics for independent sweep points. For repeated queries
    /// over the same data (or warm-cache studies) use
    /// [`QuerySession`](crate::session::QuerySession), to which this method
    /// delegates. The query completes by degrading (see
    /// [`QueryReport::degradations`]) wherever possible; failures that
    /// survive retries and degradation surface as typed
    /// [`WindexError`](crate::error::WindexError)s — never panics.
    pub fn run(
        &self,
        gpu: &mut Gpu,
        r: &Relation,
        s: &Relation,
        strategy: JoinStrategy,
    ) -> Result<QueryReport, crate::error::WindexError> {
        let mut session =
            crate::session::QuerySession::new(gpu, self.clone(), r.clone(), s.clone())?;
        session.run(gpu, strategy)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use windex_index::IndexKind;
    use windex_sim::{GpuSpec, Scale};
    use windex_workload::KeyDistribution;

    fn gpu() -> Gpu {
        Gpu::new(GpuSpec::v100_nvlink2(Scale::PAPER))
    }

    fn small_workload() -> (Relation, Relation) {
        let r = Relation::unique_sorted(1 << 14, KeyDistribution::SparseUniform, 1);
        let s = Relation::foreign_keys_uniform(&r, 1 << 10, 2);
        (r, s)
    }

    #[test]
    fn all_strategies_agree_on_result_count() {
        let (r, s) = small_workload();
        let ex = QueryExecutor::new();
        let strategies = [
            JoinStrategy::HashJoin,
            JoinStrategy::Inlj {
                index: IndexKind::BinarySearch,
            },
            JoinStrategy::PartitionedInlj {
                index: IndexKind::BPlusTree,
            },
            JoinStrategy::WindowedInlj {
                index: IndexKind::Harmonia,
                window_tuples: 256,
            },
            JoinStrategy::WindowedInlj {
                index: IndexKind::RadixSpline,
                window_tuples: 256,
            },
        ];
        for st in strategies {
            let mut g = gpu();
            let report = ex.run(&mut g, &r, &s, st).unwrap();
            // Every FK matches exactly once.
            assert_eq!(report.result_tuples, s.len(), "{st}");
            assert!(report.time.total_s > 0.0, "{st}");
            assert!(report.queries_per_second().is_finite(), "{st}");
        }
    }

    #[test]
    fn inlj_requires_sorted_relation() {
        let r = Relation::from_keys(vec![5, 3, 1], false);
        let s = Relation::from_keys(vec![3], false);
        let ex = QueryExecutor::new();
        let mut g = gpu();
        let err = ex
            .run(
                &mut g,
                &r,
                &s,
                JoinStrategy::Inlj {
                    index: IndexKind::BinarySearch,
                },
            )
            .unwrap_err();
        assert_eq!(
            err,
            crate::error::WindexError::Query(QueryError::IndexedRelationNotSorted)
        );
        // The hash join does not need sorted inputs.
        let report = ex.run(&mut g, &r, &s, JoinStrategy::HashJoin).unwrap();
        assert_eq!(report.result_tuples, 1);
    }

    #[test]
    fn report_selectivity_and_scale() {
        let (r, s) = small_workload();
        let ex = QueryExecutor::new();
        let mut g = gpu();
        let report = ex
            .run(
                &mut g,
                &r,
                &s,
                JoinStrategy::Inlj {
                    index: IndexKind::RadixSpline,
                },
            )
            .unwrap();
        assert!((report.selectivity - 1.0 / 16.0).abs() < 1e-12);
        // 2^14 tuples at scale 1024 = 2^14 · 8 · 1024 B = 0.125 GiB.
        assert!((report.paper_r_gib - 0.125).abs() < 1e-9);
        assert!(report.index_aux_bytes > 0);
    }

    #[test]
    fn windowed_counts_windows() {
        let (r, s) = small_workload();
        let ex = QueryExecutor::new();
        let mut g = gpu();
        let report = ex
            .run(
                &mut g,
                &r,
                &s,
                JoinStrategy::WindowedInlj {
                    index: IndexKind::BinarySearch,
                    window_tuples: 128,
                },
            )
            .unwrap();
        assert_eq!(report.windows, (1 << 10) / 128);
    }

    #[test]
    fn overlap_reduces_total_time() {
        let (r, s) = small_workload();
        let mut serial = QueryExecutor::new();
        serial.overlap = false;
        let overlapped = QueryExecutor::new();
        let st = JoinStrategy::WindowedInlj {
            index: IndexKind::RadixSpline,
            window_tuples: 256,
        };
        let mut g1 = gpu();
        let t_serial = serial.run(&mut g1, &r, &s, st).unwrap().time.total_s;
        let mut g2 = gpu();
        let t_overlap = overlapped.run(&mut g2, &r, &s, st).unwrap().time.total_s;
        assert!(t_overlap <= t_serial);
    }
}
