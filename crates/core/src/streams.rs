//! Push-based streaming windowed join (§5.1's stream-processing extension).
//!
//! The batch operator in [`window`](crate::window) pulls tuples from a
//! relation it can address; this operator inverts control: an upstream
//! operator *pushes* probe batches as they are produced, and the join emits
//! matches as windows close — "closing the window occurs either when the
//! window reaches its capacity, or no more tuples are available on the
//! probe-side of the join" (§5.1). Only one window of state is ever held.

use crate::error::WindexError;
use crate::window::{WindowConfig, WindowSpan, WindowStats};
use windex_index::OutOfCoreIndex;
use windex_join::{inlj_pairs, RadixPartitioner, ResultSink};
use windex_sim::{phase, Buffer, CostModel, Gpu, PhaseRecorder};

/// A stateful windowed-INLJ operator fed by pushed probe batches.
///
/// ```
/// use windex_core::prelude::*;
/// use windex_core::streams::StreamingWindowJoin;
/// use windex_core::strategy::{BuiltIndex, IndexConfigs};
/// use windex_join::ResultSink;
/// use std::rc::Rc;
///
/// let mut gpu = Gpu::new(GpuSpec::v100_nvlink2(Scale::PAPER));
/// let r = Relation::unique_sorted(1 << 14, KeyDistribution::Dense, 1);
/// let col = Rc::new(gpu.alloc_host_from_vec(r.keys().to_vec()));
/// let idx = BuiltIndex::build(&mut gpu, IndexKind::RadixSpline, &col, &IndexConfigs::default());
/// let bits = QueryExecutor::new().resolve_bits(&gpu, &r);
///
/// let cfg = WindowConfig { window_tuples: 256, bits, min_key: 0 };
/// let mut op = StreamingWindowJoin::new(&mut gpu, cfg).unwrap();
/// let mut sink = ResultSink::with_capacity(&mut gpu, 1 << 10, MemLocation::Gpu).unwrap();
///
/// // Upstream pushes batches of (key, rid) tuples as they are produced.
/// op.push(&mut gpu, idx.as_dyn(), &[(0, 100), (2, 101), (7, 102)], &mut sink).unwrap();
/// let stats = op.finish(&mut gpu, idx.as_dyn(), &mut sink).unwrap();
/// assert_eq!(stats.matches, 3);
/// ```
#[derive(Debug)]
pub struct StreamingWindowJoin {
    config: WindowConfig,
    /// CPU-side staging for the open window's keys (the upstream operator
    /// materializes its output batch in CPU memory; filling it is the
    /// upstream's cost).
    staging: Buffer<u64>,
    /// Original rids of the staged keys, parallel to `staging`.
    rids: Vec<u64>,
    fill: usize,
    windows: usize,
    matches: usize,
    finished: bool,
    /// Prices per-window counter deltas for the timeline.
    cost: CostModel,
    /// One entry per successfully closed window, in close order.
    timeline: Vec<WindowSpan>,
    /// Optional phase recorder the operator marks partition/lookup spans
    /// on. Owned (rather than borrowed) so serving layers can transfer it
    /// when the operator is recreated mid-run (e.g. window shrink).
    recorder: Option<PhaseRecorder>,
}

impl StreamingWindowJoin {
    /// Create the operator with one window of CPU staging. A zero-capacity
    /// window is a configuration error, not a panic.
    pub fn new(gpu: &mut Gpu, config: WindowConfig) -> Result<Self, WindexError> {
        if config.window_tuples == 0 {
            return Err(WindexError::InvalidConfig(
                "window must hold at least one tuple",
            ));
        }
        Ok(StreamingWindowJoin {
            staging: gpu.alloc_host(config.window_tuples),
            rids: Vec::with_capacity(config.window_tuples),
            config,
            fill: 0,
            windows: 0,
            matches: 0,
            finished: false,
            cost: CostModel::new(gpu.spec()),
            timeline: Vec::new(),
            recorder: None,
        })
    }

    /// Per-window timeline of every window closed so far: counter delta and
    /// serial time estimate per window, tiling the operator's flush work.
    pub fn timeline(&self) -> &[WindowSpan] {
        &self.timeline
    }

    /// Install (or clear) a phase recorder; the operator marks each flush's
    /// partition and probe work on it. Returns the previously installed
    /// recorder so callers can chain recorders across operator instances.
    pub fn set_phase_recorder(&mut self, rec: Option<PhaseRecorder>) -> Option<PhaseRecorder> {
        std::mem::replace(&mut self.recorder, rec)
    }

    /// Take the installed phase recorder, leaving none. Serving layers use
    /// this to finish the breakdown, or to move the recorder onto a
    /// replacement operator when degrading (window shrink).
    pub fn take_phase_recorder(&mut self) -> Option<PhaseRecorder> {
        self.recorder.take()
    }

    /// Tuples currently buffered in the open window.
    pub fn pending(&self) -> usize {
        self.fill
    }

    /// Push a batch of `(key, rid)` probe tuples. Every full window is
    /// partitioned and joined immediately; matches land in `sink` as
    /// `(rid, index position)`. Pushing into a finished operator is a typed
    /// state error; operator faults bubble up after bounded retries.
    pub fn push(
        &mut self,
        gpu: &mut Gpu,
        index: &dyn OutOfCoreIndex,
        batch: &[(u64, u64)],
        sink: &mut ResultSink,
    ) -> Result<(), WindexError> {
        if self.finished {
            return Err(WindexError::InvalidState("operator already finished"));
        }
        for &(key, rid) in batch {
            self.staging.host_mut()[self.fill] = key;
            self.rids.push(rid);
            self.fill += 1;
            if self.fill == self.config.window_tuples {
                self.flush(gpu, index, sink)?;
            }
        }
        Ok(())
    }

    /// Close the open window *now*, joining whatever it holds, without
    /// ending the stream. This is the dispatch hook for serving layers that
    /// batch keys from many clients into shared windows: a max-delay policy
    /// closes a partially-filled window early rather than holding the
    /// oldest request hostage until the window fills. An empty window is a
    /// no-op. Returns the number of tuples joined.
    pub fn flush_now(
        &mut self,
        gpu: &mut Gpu,
        index: &dyn OutOfCoreIndex,
        sink: &mut ResultSink,
    ) -> Result<usize, WindexError> {
        if self.finished {
            return Err(WindexError::InvalidState("operator already finished"));
        }
        let tuples = self.fill;
        if tuples > 0 {
            self.flush(gpu, index, sink)?;
        }
        Ok(tuples)
    }

    /// Running totals over all windows closed so far (the stream may still
    /// be open; [`finish`](Self::finish) returns the same totals and ends
    /// the stream).
    pub fn stats(&self) -> WindowStats {
        WindowStats {
            windows: self.windows,
            matches: self.matches,
        }
    }

    /// Signal end-of-stream (§5.1: the outer loop ends the input stream):
    /// joins the final partial window and returns the totals. The operator
    /// can be reused afterwards via [`reset`](Self::reset).
    pub fn finish(
        &mut self,
        gpu: &mut Gpu,
        index: &dyn OutOfCoreIndex,
        sink: &mut ResultSink,
    ) -> Result<WindowStats, WindexError> {
        if self.fill > 0 {
            self.flush(gpu, index, sink)?;
        }
        self.finished = true;
        Ok(WindowStats {
            windows: self.windows,
            matches: self.matches,
        })
    }

    /// Clear all state for a new stream. The per-window timeline restarts
    /// with the stream; an installed phase recorder is kept (it attributes
    /// a whole serving run, which may span many streams).
    pub fn reset(&mut self) {
        self.fill = 0;
        self.rids.clear();
        self.windows = 0;
        self.matches = 0;
        self.finished = false;
        self.timeline.clear();
    }

    fn flush(
        &mut self,
        gpu: &mut Gpu,
        index: &dyn OutOfCoreIndex,
        sink: &mut ResultSink,
    ) -> Result<(), WindexError> {
        let w0 = gpu.snapshot();
        let keys = self.fill;
        let partitioner = RadixPartitioner::new(self.config.bits, self.config.min_key);
        if let Some(rec) = self.recorder.as_mut() {
            rec.begin(gpu, phase::PARTITION);
        }
        let mut window = match partitioner.partition_stream(gpu, &self.staging, 0..self.fill) {
            Ok(w) => w,
            Err(e) => {
                // Close the span so the fault/retry activity stays
                // attributed to the partition phase.
                if let Some(rec) = self.recorder.as_mut() {
                    rec.end(gpu);
                }
                return Err(e.into());
            }
        };
        // The partitioner labeled pairs with staging positions; relabel to
        // the caller's rids. On the device this relabeling is fused into
        // the scatter kernel (the rid column is scattered alongside the
        // key), so it costs no extra traffic.
        for i in 0..window.len() {
            let staged = window.pairs.host()[i * 2 + 1] as usize;
            window.pairs.host_mut()[i * 2 + 1] = self.rids[staged];
        }
        if let Some(rec) = self.recorder.as_mut() {
            rec.begin(gpu, phase::LOOKUP);
        }
        // Long-lived sinks (serving layers batch many clients into one
        // sink) must never observe a failed window's partial output, so a
        // probe that fails past its retries is rolled back here.
        let mark = sink.len();
        let probed = inlj_pairs(gpu, index, &window.pairs, 0..window.len(), sink);
        window.free(gpu);
        if let Some(rec) = self.recorder.as_mut() {
            rec.end(gpu);
        }
        match probed {
            Ok(m) => {
                let delta = gpu.snapshot() - w0;
                self.timeline.push(WindowSpan {
                    window: self.windows,
                    keys,
                    matches: m,
                    counters: delta,
                    est_s: self.cost.estimate(&delta, false).total_s,
                });
                self.matches += m;
                self.windows += 1;
                self.fill = 0;
                self.rids.clear();
                Ok(())
            }
            Err(e) => {
                sink.truncate(mark);
                Err(e.into())
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::strategy::{BuiltIndex, IndexConfigs};
    use crate::window::windowed_inlj;
    use std::rc::Rc;
    use windex_index::IndexKind;
    use windex_join::PartitionBits;
    use windex_sim::{GpuSpec, MemLocation, Scale};
    use windex_workload::{KeyDistribution, Relation};

    fn setup(n_r: usize) -> (Gpu, BuiltIndex, Relation) {
        let mut g = Gpu::new(GpuSpec::v100_nvlink2(Scale::PAPER));
        let r = Relation::unique_sorted(n_r, KeyDistribution::SparseUniform, 3);
        let col = Rc::new(g.alloc_host_from_vec(r.keys().to_vec()));
        let idx = BuiltIndex::build(&mut g, IndexKind::Harmonia, &col, &IndexConfigs::default());
        (g, idx, r)
    }

    fn config(window: usize) -> WindowConfig {
        WindowConfig {
            window_tuples: window,
            bits: PartitionBits { shift: 4, bits: 6 },
            min_key: 0,
        }
    }

    #[test]
    fn streaming_equals_batch() {
        let (mut g, idx, r) = setup(20_000);
        let s = Relation::foreign_keys_uniform(&r, 3000, 4);

        // Batch reference.
        let s_col = g.alloc_host_from_vec(s.keys().to_vec());
        let mut batch_sink = ResultSink::with_capacity(&mut g, 3000, MemLocation::Gpu).unwrap();
        let batch = windowed_inlj(
            &mut g,
            idx.as_dyn(),
            &s_col,
            0..3000,
            config(256),
            &mut batch_sink,
        )
        .unwrap();

        // Streaming: pushed in odd-sized chunks.
        let mut op = StreamingWindowJoin::new(&mut g, config(256)).unwrap();
        let mut stream_sink = ResultSink::with_capacity(&mut g, 3000, MemLocation::Gpu).unwrap();
        let tuples: Vec<(u64, u64)> = s
            .keys()
            .iter()
            .enumerate()
            .map(|(i, &k)| (k, i as u64))
            .collect();
        for chunk in tuples.chunks(177) {
            op.push(&mut g, idx.as_dyn(), chunk, &mut stream_sink)
                .unwrap();
        }
        let stats = op.finish(&mut g, idx.as_dyn(), &mut stream_sink).unwrap();

        assert_eq!(stats.matches, batch.matches);
        assert_eq!(stats.windows, batch.windows);
        let mut a = batch_sink.host_pairs();
        let mut b = stream_sink.host_pairs();
        a.sort_unstable();
        b.sort_unstable();
        assert_eq!(a, b);
    }

    #[test]
    fn partial_window_flushes_on_finish() {
        let (mut g, idx, r) = setup(1000);
        let mut op = StreamingWindowJoin::new(&mut g, config(100)).unwrap();
        let mut sink = ResultSink::with_capacity(&mut g, 10, MemLocation::Gpu).unwrap();
        let batch: Vec<(u64, u64)> = r.keys()[..7].iter().map(|&k| (k, 900 + k)).collect();
        op.push(&mut g, idx.as_dyn(), &batch, &mut sink).unwrap();
        assert_eq!(op.pending(), 7);
        assert_eq!(sink.len(), 0, "window not yet closed");
        let stats = op.finish(&mut g, idx.as_dyn(), &mut sink).unwrap();
        assert_eq!(stats.windows, 1);
        assert_eq!(stats.matches, 7);
        // Original rids preserved.
        for (rid, pos) in sink.host_pairs() {
            assert_eq!(rid, 900 + r.keys()[pos as usize]);
        }
    }

    #[test]
    fn reset_allows_reuse() {
        let (mut g, idx, r) = setup(1000);
        let mut op = StreamingWindowJoin::new(&mut g, config(4)).unwrap();
        let mut sink = ResultSink::with_capacity(&mut g, 100, MemLocation::Gpu).unwrap();
        op.push(&mut g, idx.as_dyn(), &[(r.keys()[0], 0)], &mut sink)
            .unwrap();
        op.finish(&mut g, idx.as_dyn(), &mut sink).unwrap();
        op.reset();
        op.push(&mut g, idx.as_dyn(), &[(r.keys()[1], 1)], &mut sink)
            .unwrap();
        let stats = op.finish(&mut g, idx.as_dyn(), &mut sink).unwrap();
        assert_eq!(stats.matches, 1);
    }

    #[test]
    fn empty_push_is_a_noop() {
        let (mut g, idx, _r) = setup(100);
        let mut op = StreamingWindowJoin::new(&mut g, config(8)).unwrap();
        let mut sink = ResultSink::with_capacity(&mut g, 10, MemLocation::Gpu).unwrap();
        let launches_before = g.counters().kernel_launches;
        op.push(&mut g, idx.as_dyn(), &[], &mut sink).unwrap();
        assert_eq!(op.pending(), 0);
        assert_eq!(g.counters().kernel_launches, launches_before);
        assert_eq!(op.stats(), WindowStats::default());
    }

    #[test]
    fn finish_on_empty_window_closes_no_windows() {
        let (mut g, idx, _r) = setup(100);
        let mut op = StreamingWindowJoin::new(&mut g, config(8)).unwrap();
        let mut sink = ResultSink::with_capacity(&mut g, 10, MemLocation::Gpu).unwrap();
        let stats = op.finish(&mut g, idx.as_dyn(), &mut sink).unwrap();
        assert_eq!(stats, WindowStats::default());
        assert_eq!(sink.len(), 0);
    }

    #[test]
    fn batch_exactly_filling_a_window_flushes_once() {
        let (mut g, idx, r) = setup(1000);
        let mut op = StreamingWindowJoin::new(&mut g, config(64)).unwrap();
        let mut sink = ResultSink::with_capacity(&mut g, 64, MemLocation::Gpu).unwrap();
        let batch: Vec<(u64, u64)> = r.keys()[..64].iter().map(|&k| (k, k)).collect();
        op.push(&mut g, idx.as_dyn(), &batch, &mut sink).unwrap();
        // The exact fill closed the window during push; nothing is pending.
        assert_eq!(op.pending(), 0);
        assert_eq!(op.stats().windows, 1);
        assert_eq!(sink.len(), 64);
        // finish has nothing left to flush.
        let stats = op.finish(&mut g, idx.as_dyn(), &mut sink).unwrap();
        assert_eq!(stats.windows, 1);
        assert_eq!(stats.matches, 64);
    }

    #[test]
    fn flush_now_closes_the_partial_window_early() {
        let (mut g, idx, r) = setup(1000);
        let mut op = StreamingWindowJoin::new(&mut g, config(100)).unwrap();
        let mut sink = ResultSink::with_capacity(&mut g, 10, MemLocation::Gpu).unwrap();
        let batch: Vec<(u64, u64)> = r.keys()[..5].iter().map(|&k| (k, k)).collect();
        op.push(&mut g, idx.as_dyn(), &batch, &mut sink).unwrap();
        assert_eq!(op.flush_now(&mut g, idx.as_dyn(), &mut sink).unwrap(), 5);
        assert_eq!(op.pending(), 0);
        assert_eq!(op.stats().windows, 1);
        assert_eq!(sink.len(), 5);
        // Empty flush is a no-op, and the stream is still open for pushes.
        assert_eq!(op.flush_now(&mut g, idx.as_dyn(), &mut sink).unwrap(), 0);
        assert_eq!(op.stats().windows, 1);
        op.push(&mut g, idx.as_dyn(), &batch[..1], &mut sink)
            .unwrap();
        let stats = op.finish(&mut g, idx.as_dyn(), &mut sink).unwrap();
        assert_eq!(stats.windows, 2);
        assert_eq!(stats.matches, 6);
    }

    #[test]
    fn failed_flush_rolls_the_sink_back() {
        // A transient fault mid-push must not leak a failed window's
        // partial output into a long-lived sink.
        use windex_sim::{FaultPlan, RetryPolicy};
        let (mut g, idx, r) = setup(1000);
        let mut op = StreamingWindowJoin::new(&mut g, config(16)).unwrap();
        let mut sink = ResultSink::with_capacity(&mut g, 100, MemLocation::Cpu).unwrap();

        // A healthy window first, so the sink holds prior results.
        let ok: Vec<(u64, u64)> = r.keys()[..16].iter().map(|&k| (k, k)).collect();
        op.push(&mut g, idx.as_dyn(), &ok, &mut sink).unwrap();
        let committed = sink.len();
        assert_eq!(committed, 16);

        // Every transfer now faults: retries exhaust and the flush fails.
        g.set_retry_policy(RetryPolicy {
            max_retries: 1,
            base_backoff_ns: 10,
        });
        g.set_fault_plan(FaultPlan::seeded(11).with_transfer_faults(1.0))
            .expect("valid fault plan");
        let bad: Vec<(u64, u64)> = r.keys()[16..32].iter().map(|&k| (k, k)).collect();
        let err = op.push(&mut g, idx.as_dyn(), &bad, &mut sink).unwrap_err();
        assert!(err.is_transient(), "fault survives retries: {err}");
        assert_eq!(
            sink.len(),
            committed,
            "failed window's partial output must be rolled back"
        );
        assert_eq!(op.stats().windows, 1, "the failed window did not close");

        // Lifting the fault plan lets the stream continue cleanly.
        g.set_fault_plan(FaultPlan::none())
            .expect("valid fault plan");
        op.reset();
        op.push(&mut g, idx.as_dyn(), &bad, &mut sink).unwrap();
        let stats = op.finish(&mut g, idx.as_dyn(), &mut sink).unwrap();
        assert_eq!(stats.matches, 16);
        assert_eq!(sink.len(), committed + 16);
    }

    #[test]
    fn timeline_and_recorder_observe_every_closed_window() {
        use windex_sim::Counters;
        let (mut g, idx, r) = setup(2000);
        let s = Relation::foreign_keys_uniform(&r, 600, 9);
        let mut op = StreamingWindowJoin::new(&mut g, config(128)).unwrap();
        op.set_phase_recorder(Some(PhaseRecorder::start(&g)));
        let mut sink = ResultSink::with_capacity(&mut g, 600, MemLocation::Gpu).unwrap();
        let tuples: Vec<(u64, u64)> = s
            .keys()
            .iter()
            .enumerate()
            .map(|(i, &k)| (k, i as u64))
            .collect();
        for chunk in tuples.chunks(97) {
            op.push(&mut g, idx.as_dyn(), chunk, &mut sink).unwrap();
        }
        let stats = op.finish(&mut g, idx.as_dyn(), &mut sink).unwrap();

        let timeline = op.timeline().to_vec();
        assert_eq!(timeline.len(), stats.windows);
        assert_eq!(timeline.iter().map(|w| w.keys).sum::<usize>(), 600);
        assert_eq!(
            timeline.iter().map(|w| w.matches).sum::<usize>(),
            stats.matches
        );
        assert!(timeline.iter().all(|w| w.est_s > 0.0));
        // Window indices are the close order.
        for (i, w) in timeline.iter().enumerate() {
            assert_eq!(w.window, i);
        }

        let bd = op.take_phase_recorder().unwrap().finish(&g);
        assert_eq!(bd.counter_sum(), bd.total, "span-sum invariant");
        // The recorder covers exactly the flushes, which the timeline tiles
        // (staging writes between flushes are uncounted host work).
        let tiles = timeline
            .iter()
            .fold(Counters::default(), |a, w| a + w.counters);
        assert_eq!(bd.total, tiles);
        assert!(bd.get(phase::PARTITION).is_some());
        assert!(bd.get(phase::LOOKUP).is_some());
        assert!(
            bd.get(phase::OTHER).is_none(),
            "all flush work is attributed to a named phase"
        );
    }

    #[test]
    fn window_stats_serialize_for_reports() {
        let stats = WindowStats {
            windows: 3,
            matches: 42,
        };
        let json = serde_json::to_string(&stats).unwrap();
        assert_eq!(json, r#"{"windows":3,"matches":42}"#);
    }

    #[test]
    fn zero_window_is_a_typed_config_error() {
        let (mut g, _idx, _r) = setup(100);
        let err = StreamingWindowJoin::new(&mut g, config(0)).unwrap_err();
        assert!(matches!(err, WindexError::InvalidConfig(_)));
    }

    #[test]
    fn push_after_finish_is_a_typed_state_error() {
        let (mut g, idx, _r) = setup(100);
        let mut op = StreamingWindowJoin::new(&mut g, config(4)).unwrap();
        let mut sink = ResultSink::with_capacity(&mut g, 10, MemLocation::Gpu).unwrap();
        op.finish(&mut g, idx.as_dyn(), &mut sink).unwrap();
        let err = op
            .push(&mut g, idx.as_dyn(), &[(1, 1)], &mut sink)
            .unwrap_err();
        assert_eq!(err, WindexError::InvalidState("operator already finished"));
        // The operator is still usable after a reset.
        op.reset();
        op.push(&mut g, idx.as_dyn(), &[(1, 1)], &mut sink).unwrap();
    }
}
