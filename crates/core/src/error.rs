//! The unified error hierarchy of the query engine.
//!
//! Every failure reachable from the public API is a value of
//! [`WindexError`]: simulator faults and capacity errors bubble up from
//! [`windex_sim`], operator errors from [`windex_join`], and query-level
//! validation failures originate here. Nothing on a public path panics —
//! the engine degrades (see [`session`](crate::session)) or returns one of
//! these.

use crate::query::QueryError;
use serde::Serialize;
use windex_join::JoinError;
use windex_sim::SimError;

/// Any error the query engine can return.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub enum WindexError {
    /// A simulator fault or capacity error that survived retries and
    /// degradation.
    Sim(SimError),
    /// A join-operator error.
    Join(JoinError),
    /// A query-level validation error.
    Query(QueryError),
    /// Invalid engine or operator configuration.
    InvalidConfig(&'static str),
    /// An operation was issued against an operator in the wrong state
    /// (e.g. pushing into a finished streaming join).
    InvalidState(&'static str),
}

impl WindexError {
    /// Whether retrying the failed operation may succeed.
    pub fn is_transient(&self) -> bool {
        match self {
            WindexError::Sim(e) => e.is_transient(),
            WindexError::Join(e) => e.is_transient(),
            _ => false,
        }
    }

    /// Whether this is a device-memory-capacity error — the trigger for the
    /// session's degradation ladder.
    pub fn is_capacity(&self) -> bool {
        matches!(
            self,
            WindexError::Sim(SimError::OutOfDeviceMemory { .. })
                | WindexError::Join(JoinError::Sim(SimError::OutOfDeviceMemory { .. }))
        )
    }

    /// Whether this is a whole-device loss (a chaos device-loss window is
    /// active) — the trigger for the session's checkpoint-recovery path
    /// rather than the degradation ladder.
    pub fn is_device_loss(&self) -> bool {
        matches!(
            self,
            WindexError::Sim(SimError::DeviceLost)
                | WindexError::Join(JoinError::Sim(SimError::DeviceLost))
        )
    }
}

impl From<SimError> for WindexError {
    fn from(e: SimError) -> Self {
        WindexError::Sim(e)
    }
}

impl From<JoinError> for WindexError {
    fn from(e: JoinError) -> Self {
        WindexError::Join(e)
    }
}

impl From<QueryError> for WindexError {
    fn from(e: QueryError) -> Self {
        WindexError::Query(e)
    }
}

impl std::fmt::Display for WindexError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WindexError::Sim(e) => write!(f, "simulator error: {e}"),
            WindexError::Join(e) => write!(f, "join error: {e}"),
            WindexError::Query(e) => write!(f, "query error: {e}"),
            WindexError::InvalidConfig(msg) => write!(f, "invalid configuration: {msg}"),
            WindexError::InvalidState(msg) => write!(f, "invalid state: {msg}"),
        }
    }
}

impl std::error::Error for WindexError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_and_classification() {
        let e: WindexError = SimError::AllocFault.into();
        assert!(e.is_transient());
        assert!(!e.is_capacity());
        let e: WindexError = JoinError::Sim(SimError::OutOfDeviceMemory {
            requested: 1,
            live: 0,
            budget: 0,
        })
        .into();
        assert!(e.is_capacity());
        assert!(!e.is_transient());
        let e: WindexError = QueryError::ForeignKeyViolation.into();
        assert_eq!(e, WindexError::Query(QueryError::ForeignKeyViolation));
        assert!(!e.is_transient() && !e.is_capacity());
    }

    #[test]
    fn device_loss_is_detected_through_both_wrappers() {
        let direct: WindexError = SimError::DeviceLost.into();
        assert!(direct.is_device_loss());
        assert!(
            !direct.is_transient(),
            "device loss must not be retried raw"
        );
        assert!(!direct.is_capacity());
        let wrapped: WindexError = JoinError::Sim(SimError::DeviceLost).into();
        assert!(wrapped.is_device_loss());
        let other: WindexError = SimError::AllocFault.into();
        assert!(!other.is_device_loss());
    }

    #[test]
    fn display_is_informative() {
        let e = WindexError::InvalidConfig("window must hold at least one tuple");
        assert!(e.to_string().contains("window must hold"));
    }
}
