//! Join strategies and index construction.
//!
//! A [`JoinStrategy`] names one of the paper's execution plans; the query
//! engine builds the required index (pre-query work, §3.2: "we assume the
//! index already exists when the query is run") and runs the plan with
//! every device-side access counted.

use std::rc::Rc;
use windex_index::{
    BPlusTree, BPlusTreeConfig, BinarySearchIndex, Harmonia, HarmoniaConfig, IndexKind,
    OutOfCoreIndex, RadixSpline, RadixSplineConfig,
};
use windex_sim::{Buffer, Gpu};

/// The execution plans evaluated by the paper.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize)]
pub enum JoinStrategy {
    /// Baseline: WarpCore-style hash join, built on the smaller relation on
    /// the fly, probing with a full scan of the larger one (§3.2).
    HashJoin,
    /// Unpartitioned INLJ over the given index (§3.3, Fig. 3).
    Inlj {
        /// Index structure probed in the inner loop.
        index: IndexKind,
    },
    /// INLJ with the probe keys fully radix-partitioned (materialized)
    /// ahead of the join (§4.3, Fig. 5).
    PartitionedInlj {
        /// Index structure probed in the inner loop.
        index: IndexKind,
    },
    /// The paper's contribution: INLJ over tumbling partitioning windows —
    /// no input materialization (§5, Figs. 7–9).
    WindowedInlj {
        /// Index structure probed in the inner loop.
        index: IndexKind,
        /// Window capacity in probe tuples.
        window_tuples: usize,
    },
}

impl JoinStrategy {
    /// The index kind this strategy probes, if any.
    pub fn index_kind(&self) -> Option<IndexKind> {
        match self {
            JoinStrategy::HashJoin => None,
            JoinStrategy::Inlj { index }
            | JoinStrategy::PartitionedInlj { index }
            | JoinStrategy::WindowedInlj { index, .. } => Some(*index),
        }
    }

    /// Short display label, e.g. `"windowed-inlj(radix-spline)"`.
    pub fn label(&self) -> String {
        match self {
            JoinStrategy::HashJoin => "hash-join".to_string(),
            JoinStrategy::Inlj { index } => format!("inlj({index})"),
            JoinStrategy::PartitionedInlj { index } => format!("partitioned-inlj({index})"),
            JoinStrategy::WindowedInlj {
                index,
                window_tuples,
            } => {
                format!("windowed-inlj({index}, w={window_tuples})")
            }
        }
    }
}

impl std::fmt::Display for JoinStrategy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.label())
    }
}

/// Per-index build parameters (paper defaults, §3.2).
#[derive(Debug, Clone, Copy, Default)]
pub struct IndexConfigs {
    /// B+tree: 4 KiB nodes.
    pub btree: BPlusTreeConfig,
    /// Harmonia: 32 keys per node, sub-warps of 8 lanes.
    pub harmonia: HarmoniaConfig,
    /// RadixSpline: ε = 32, auto radix bits.
    pub radix_spline: RadixSplineConfig,
}

/// One constructed index of any kind.
#[derive(Debug)]
pub enum BuiltIndex {
    /// Binary search (no auxiliary structure).
    BinarySearch(BinarySearchIndex),
    /// 4 KiB-node B+tree.
    BPlusTree(BPlusTree),
    /// Harmonia.
    Harmonia(Harmonia),
    /// RadixSpline.
    RadixSpline(RadixSpline),
}

impl BuiltIndex {
    /// Build an index of `kind` over the CPU-resident sorted column.
    pub fn build(
        gpu: &mut Gpu,
        kind: IndexKind,
        column: &Rc<Buffer<u64>>,
        configs: &IndexConfigs,
    ) -> Self {
        match kind {
            IndexKind::BinarySearch => {
                BuiltIndex::BinarySearch(BinarySearchIndex::new(Rc::clone(column)))
            }
            IndexKind::BPlusTree => {
                BuiltIndex::BPlusTree(BPlusTree::bulk_load(gpu, column.host(), configs.btree))
            }
            IndexKind::Harmonia => {
                BuiltIndex::Harmonia(Harmonia::build_shared(gpu, column, configs.harmonia))
            }
            IndexKind::RadixSpline => BuiltIndex::RadixSpline(RadixSpline::build(
                gpu,
                Rc::clone(column),
                configs.radix_spline,
            )),
        }
    }

    /// Trait-object view for the join operators.
    pub fn as_dyn(&self) -> &dyn OutOfCoreIndex {
        match self {
            BuiltIndex::BinarySearch(i) => i,
            BuiltIndex::BPlusTree(i) => i,
            BuiltIndex::Harmonia(i) => i,
            BuiltIndex::RadixSpline(i) => i,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use windex_sim::{GpuSpec, Scale};

    #[test]
    fn builds_all_kinds_and_answers_lookups() {
        let mut gpu = Gpu::new(GpuSpec::v100_nvlink2(Scale::PAPER));
        let keys: Vec<u64> = (0..5000u64).map(|i| i * 2 + 1).collect();
        let col = Rc::new(gpu.alloc_host_from_vec(keys.clone()));
        for kind in IndexKind::all() {
            let idx = BuiltIndex::build(&mut gpu, kind, &col, &IndexConfigs::default());
            let d = idx.as_dyn();
            assert_eq!(d.kind(), kind);
            assert_eq!(d.len(), 5000);
            assert_eq!(d.lookup(&mut gpu, keys[123]), Some(123), "{kind}");
            assert_eq!(d.lookup(&mut gpu, 0), None, "{kind}");
        }
    }

    #[test]
    fn labels_round_trip() {
        assert_eq!(JoinStrategy::HashJoin.label(), "hash-join");
        assert_eq!(
            JoinStrategy::Inlj {
                index: IndexKind::Harmonia
            }
            .label(),
            "inlj(harmonia)"
        );
        assert!(JoinStrategy::WindowedInlj {
            index: IndexKind::RadixSpline,
            window_tuples: 4096
        }
        .label()
        .contains("w=4096"));
    }

    #[test]
    fn strategy_index_kind() {
        assert_eq!(JoinStrategy::HashJoin.index_kind(), None);
        assert_eq!(
            JoinStrategy::PartitionedInlj {
                index: IndexKind::BPlusTree
            }
            .index_kind(),
            Some(IndexKind::BPlusTree)
        );
    }
}
