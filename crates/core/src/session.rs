//! Query sessions: stage once, query many times.
//!
//! [`QueryExecutor::run`](crate::query::QueryExecutor::run) stages the
//! relations and builds the index for every call — right for independent
//! sweep points, wasteful for repeated queries over the same data, and
//! wrong for warm-cache studies (re-staged buffers get fresh virtual
//! addresses, so nothing the previous run cached is ever reused). A
//! [`QuerySession`] pins the staged relations and lazily builds one index
//! per kind; repeated runs then share addresses, caches, and TLB state.

use crate::query::{QueryError, QueryExecutor, QueryReport};
use crate::strategy::{BuiltIndex, JoinStrategy};
use crate::window::{windowed_inlj, WindowConfig};
use std::collections::HashMap;
use std::rc::Rc;
use windex_index::IndexKind;
use windex_join::{hash_join, inlj_pairs, inlj_stream, PartitionBits, RadixPartitioner, ResultSink};
use windex_sim::{Buffer, CostModel, Gpu};
use windex_workload::{join_selectivity, Relation};

/// Staged relations plus lazily-built indexes for repeated querying.
#[derive(Debug)]
pub struct QuerySession {
    executor: QueryExecutor,
    r: Relation,
    s: Relation,
    r_col: Rc<Buffer<u64>>,
    s_col: Buffer<u64>,
    built: HashMap<IndexKind, BuiltIndex>,
    bits: PartitionBits,
}

impl QuerySession {
    /// Stage `r` and `s` in CPU memory under the given executor settings.
    /// `r` may be unsorted only if the session will run nothing but hash
    /// joins; index strategies verify sortedness at [`run`](Self::run).
    pub fn new(
        gpu: &mut Gpu,
        executor: QueryExecutor,
        r: Relation,
        s: Relation,
    ) -> Result<Self, QueryError> {
        let r_col = Rc::new(gpu.alloc_from_vec(windex_sim::MemLocation::Cpu, r.keys().to_vec()));
        let s_col = gpu.alloc_from_vec(windex_sim::MemLocation::Cpu, s.keys().to_vec());
        let bits = executor.resolve_bits(gpu, &r);
        Ok(QuerySession {
            executor,
            r,
            s,
            r_col,
            s_col,
            built: HashMap::new(),
            bits,
        })
    }

    /// The staged indexed relation.
    pub fn indexed_relation(&self) -> &Relation {
        &self.r
    }

    /// The staged probe relation.
    pub fn probe_relation(&self) -> &Relation {
        &self.s
    }

    /// Build (or fetch the cached) index of `kind` over the staged column.
    pub fn index(&mut self, gpu: &mut Gpu, kind: IndexKind) -> &BuiltIndex {
        let configs = self.executor.index_configs;
        self.built
            .entry(kind)
            .or_insert_with(|| BuiltIndex::build(gpu, kind, &self.r_col, &configs))
    }

    /// Run one query over the staged data. Identical measurement semantics
    /// to [`QueryExecutor::run`], except that staging and index builds are
    /// shared across calls — so with `cold_start = false`, repeated runs
    /// genuinely reuse TLB and cache state.
    pub fn run(&mut self, gpu: &mut Gpu, strategy: JoinStrategy) -> Result<QueryReport, QueryError> {
        if let Some(kind) = strategy.index_kind() {
            if !self.r.is_sorted_unique() {
                return Err(QueryError::IndexedRelationNotSorted);
            }
            self.index(gpu, kind); // ensure built before the measured region
        }
        let mut sink =
            ResultSink::with_capacity(gpu, self.s.len().max(1), self.executor.result_location);
        let min_key = self.r.min_key().unwrap_or(0);
        let bits = self.bits;

        // ---- measured region ----
        if self.executor.cold_start {
            gpu.reset_memory_system();
        }
        let before = gpu.snapshot();
        let mut windows = 0;
        let result_tuples = match strategy {
            JoinStrategy::HashJoin => {
                let stats = if self.s_col.len() <= self.r_col.len() {
                    hash_join(gpu, &self.s_col, &self.r_col, self.executor.hash_join, &mut sink)
                } else {
                    hash_join(gpu, &self.r_col, &self.s_col, self.executor.hash_join, &mut sink)
                };
                stats.matches
            }
            JoinStrategy::Inlj { index } => {
                let idx = self.built[&index].as_dyn();
                inlj_stream(gpu, idx, &self.s_col, 0..self.s_col.len(), &mut sink)
            }
            JoinStrategy::PartitionedInlj { index } => {
                let idx = self.built[&index].as_dyn();
                let part = RadixPartitioner::new(bits, min_key);
                let all = part.partition_stream(gpu, &self.s_col, 0..self.s_col.len());
                inlj_pairs(gpu, idx, &all.pairs, 0..all.len(), &mut sink)
            }
            JoinStrategy::WindowedInlj { index, window_tuples } => {
                let idx = self.built[&index].as_dyn();
                let cfg = WindowConfig {
                    window_tuples,
                    bits,
                    min_key,
                };
                let stats =
                    windowed_inlj(gpu, idx, &self.s_col, 0..self.s_col.len(), cfg, &mut sink);
                windows = stats.windows;
                stats.matches
            }
        };
        let delta = gpu.snapshot() - before;
        // ---- end measured region ----

        let effective_overlap = self.executor.overlap
            && match strategy {
                JoinStrategy::WindowedInlj { .. } => windows >= 2,
                _ => true,
            };
        let cm = CostModel::new(gpu.spec());
        let time = cm.estimate(&delta, effective_overlap);
        let index_aux_bytes = strategy
            .index_kind()
            .map_or(0, |k| self.built[&k].as_dyn().aux_bytes());
        Ok(QueryReport {
            strategy: strategy.label(),
            index: strategy.index_kind(),
            r_tuples: self.r.len(),
            s_tuples: self.s.len(),
            paper_r_gib: gpu.spec().scale.paper_gib_for_sim_tuples(self.r.len()),
            selectivity: join_selectivity(&self.r, &self.s),
            result_tuples,
            windows,
            counters: delta,
            time,
            transfer_volume_paper_bytes: cm.transfer_volume_bytes(&delta),
            index_aux_bytes,
        })
    }

    /// Mutable access to the executor settings (e.g. toggle `cold_start`
    /// between runs).
    pub fn executor_mut(&mut self) -> &mut QueryExecutor {
        &mut self.executor
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use windex_sim::{GpuSpec, Scale};
    use windex_workload::KeyDistribution;

    fn gpu() -> Gpu {
        Gpu::new(GpuSpec::v100_nvlink2(Scale::PAPER))
    }

    fn session(gpu: &mut Gpu) -> QuerySession {
        let r = Relation::unique_sorted(1 << 15, KeyDistribution::Dense, 1);
        let s = Relation::foreign_keys_uniform(&r, 1 << 11, 2);
        QuerySession::new(gpu, QueryExecutor::new(), r, s).unwrap()
    }

    #[test]
    fn session_matches_one_shot_executor() {
        let mut g = gpu();
        let mut sess = session(&mut g);
        let st = JoinStrategy::WindowedInlj {
            index: IndexKind::RadixSpline,
            window_tuples: 256,
        };
        let a = sess.run(&mut g, st).unwrap();
        // One-shot run over equal data.
        let r = sess.indexed_relation().clone();
        let s = sess.probe_relation().clone();
        let mut g2 = gpu();
        let b = QueryExecutor::new().run(&mut g2, &r, &s, st).unwrap();
        assert_eq!(a.result_tuples, b.result_tuples);
        assert_eq!(a.counters, b.counters, "session must measure identically");
    }

    #[test]
    fn indexes_are_built_once() {
        let mut g = gpu();
        let mut sess = session(&mut g);
        let st = JoinStrategy::Inlj {
            index: IndexKind::BPlusTree,
        };
        let _ = sess.run(&mut g, st).unwrap();
        let aux1 = sess.index(&mut g, IndexKind::BPlusTree).as_dyn().aux_bytes();
        let _ = sess.run(&mut g, st).unwrap();
        let aux2 = sess.index(&mut g, IndexKind::BPlusTree).as_dyn().aux_bytes();
        assert_eq!(aux1, aux2);
        assert_eq!(sess.built.len(), 1);
    }

    #[test]
    fn warm_rerun_reuses_translations() {
        let mut g = gpu();
        let mut sess = session(&mut g);
        let st = JoinStrategy::Inlj {
            index: IndexKind::BinarySearch,
        };
        let cold = sess.run(&mut g, st).unwrap();
        sess.executor_mut().cold_start = false;
        let warm = sess.run(&mut g, st).unwrap();
        // Same work, strictly fewer TLB misses: addresses are shared now.
        assert_eq!(cold.result_tuples, warm.result_tuples);
        assert!(
            warm.counters.tlb_misses < cold.counters.tlb_misses,
            "warm {} vs cold {}",
            warm.counters.tlb_misses,
            cold.counters.tlb_misses
        );
    }

    #[test]
    fn rejects_unsorted_relation_for_index_strategies_only() {
        let mut g = gpu();
        let r = Relation::from_keys(vec![3, 1], false);
        let s = Relation::from_keys(vec![1], false);
        let mut sess = QuerySession::new(&mut g, QueryExecutor::new(), r, s).unwrap();
        assert_eq!(
            sess.run(
                &mut g,
                JoinStrategy::Inlj {
                    index: IndexKind::BinarySearch
                }
            )
            .unwrap_err(),
            QueryError::IndexedRelationNotSorted
        );
        // The hash join does not need sorted inputs.
        let rep = sess.run(&mut g, JoinStrategy::HashJoin).unwrap();
        assert_eq!(rep.result_tuples, 1);
    }
}
