//! Query sessions: stage once, query many times — and keep every query
//! running under memory pressure and injected faults.
//!
//! [`QueryExecutor::run`](crate::query::QueryExecutor::run) stages the
//! relations and builds the index for every call — right for independent
//! sweep points, wasteful for repeated queries over the same data, and
//! wrong for warm-cache studies (re-staged buffers get fresh virtual
//! addresses, so nothing the previous run cached is ever reused). A
//! [`QuerySession`] pins the staged relations and lazily builds one index
//! per kind; repeated runs then share addresses, caches, and TLB state.
//!
//! # Degradation ladder
//!
//! Before the measured region, [`run`](QuerySession::run) performs an
//! *admission check*: the staging footprint of the requested plan (one
//! window of partitioned pairs, or the fully-materialized probe side, plus
//! the result sink) is compared against the device-memory headroom. If the
//! plan does not fit — or device memory runs out mid-query — the session
//! degrades it one rung at a time instead of failing:
//!
//! 1. **Shrink the window** — halve the windowed INLJ's tumbling window
//!    (down to [`MIN_WINDOW_TUPLES`]); a fully-partitioned INLJ first
//!    degrades to the windowed operator.
//! 2. **Spill results to CPU** — place the result sink in CPU memory.
//! 3. **Fall back to the hash join** — the no-partitioning hash join
//!    chunks its own build side to fit the budget.
//!
//! Every step is recorded in
//! [`QueryReport::degradations`](crate::query::QueryReport::degradations),
//! so a degraded run is distinguishable from a fault-free one while
//! producing the same result tuples.

use crate::error::WindexError;
use crate::query::{DegradationEvent, QueryError, QueryExecutor, QueryReport};
use crate::strategy::{BuiltIndex, JoinStrategy};
use crate::window::{windowed_inlj_observed, WindowConfig, WindowObserver, WindowSpan};
use std::collections::HashMap;
use std::rc::Rc;
use windex_index::IndexKind;
use windex_join::{
    hash_join, inlj_pairs, inlj_stream, PartitionBits, RadixPartitioner, ResultSink,
};
use windex_sim::{phase, Buffer, CostModel, Gpu, MemLocation, PhaseRecorder};
use windex_workload::Relation;

/// Smallest window the degradation ladder will shrink to before moving to
/// the next rung (one warp of probe tuples).
pub const MIN_WINDOW_TUPLES: usize = 32;

/// Device losses one [`QuerySession::run`] call will recover from before
/// giving up and surfacing [`SimError::DeviceLost`](windex_sim::SimError).
/// Chaos schedules place a bounded number of loss windows, so repeated
/// losses within one query indicate a misconfigured scenario rather than
/// recoverable weather.
pub const MAX_DEVICE_LOSS_RECOVERIES: usize = 4;

/// Host-resident recipe for rebuilding every device-dependent structure a
/// session has staged — the state needed to bring a *replacement* device to
/// parity after a whole-device loss.
///
/// The staged relations already live in CPU memory, so the checkpoint only
/// needs to remember *which* indexes were built; the column data rebuilds
/// them deterministically. Captured by [`QuerySession::checkpoint`] and
/// consumed by [`QuerySession::restore`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IndexCheckpoint {
    /// Index kinds that were built, in deterministic
    /// ([`IndexKind::all`]) order.
    kinds: Vec<IndexKind>,
}

impl IndexCheckpoint {
    /// Index kinds the checkpoint will rebuild, in deterministic order.
    pub fn kinds(&self) -> &[IndexKind] {
        &self.kinds
    }

    /// Whether the checkpoint rebuilds nothing (no indexes were staged).
    pub fn is_empty(&self) -> bool {
        self.kinds.is_empty()
    }
}

/// Staged relations plus lazily-built indexes for repeated querying.
#[derive(Debug)]
pub struct QuerySession {
    executor: QueryExecutor,
    r: Relation,
    s: Relation,
    r_col: Rc<Buffer<u64>>,
    s_col: Rc<Buffer<u64>>,
    built: HashMap<IndexKind, BuiltIndex>,
    bits: PartitionBits,
}

impl QuerySession {
    /// Stage `r` and `s` in CPU memory under the given executor settings.
    /// `r` may be unsorted only if the session will run nothing but hash
    /// joins; index strategies verify sortedness at [`run`](Self::run).
    ///
    /// When [`QueryExecutor::validate_foreign_keys`] is set (the default),
    /// every probe key must lie inside the indexed relation's key domain
    /// `[min(R), max(R)]`; violations return
    /// [`QueryError::ForeignKeyViolation`].
    pub fn new(
        gpu: &mut Gpu,
        executor: QueryExecutor,
        r: Relation,
        s: Relation,
    ) -> Result<Self, WindexError> {
        if executor.validate_foreign_keys {
            match (r.min_key(), r.max_key()) {
                (Some(lo), Some(hi)) => {
                    if s.keys().iter().any(|&k| k < lo || k > hi) {
                        return Err(QueryError::ForeignKeyViolation.into());
                    }
                }
                // An empty indexed relation has an empty key domain: any
                // probe key at all is outside it.
                _ => {
                    if !s.keys().is_empty() {
                        return Err(QueryError::ForeignKeyViolation.into());
                    }
                }
            }
        }
        // Zero-copy staging: the host columns alias the relations' shared
        // storage (same addresses and accounting as a copied column).
        let r_col = Rc::new(gpu.alloc_host_shared(r.keys_shared()));
        let s_col = Rc::new(gpu.alloc_host_shared(s.keys_shared()));
        let bits = executor.resolve_bits(gpu, &r);
        Ok(QuerySession {
            executor,
            r,
            s,
            r_col,
            s_col,
            built: HashMap::new(),
            bits,
        })
    }

    /// The staged indexed relation.
    pub fn indexed_relation(&self) -> &Relation {
        &self.r
    }

    /// The staged probe relation.
    pub fn probe_relation(&self) -> &Relation {
        &self.s
    }

    /// Build (or fetch the cached) index of `kind` over the staged column.
    pub fn index(&mut self, gpu: &mut Gpu, kind: IndexKind) -> &BuiltIndex {
        let configs = self.executor.index_configs;
        self.built
            .entry(kind)
            .or_insert_with(|| BuiltIndex::build(gpu, kind, &self.r_col, &configs))
    }

    /// Ensure everything `strategy` needs outside the measured region is in
    /// place (today: the index build), returning the cost-model estimate of
    /// the work done in seconds — `0.0` when the strategy needs no index or
    /// it was already built.
    ///
    /// This is the strategy-switch path for the online tuner: switching a
    /// tenant to a new index family pays the build exactly once, priced so
    /// the serving clock can charge it, and reuses the PR 6 checkpoint
    /// machinery on device loss (a rebuilt session restores whatever set of
    /// indexes switches had accumulated).
    pub fn prepare_strategy(
        &mut self,
        gpu: &mut Gpu,
        strategy: JoinStrategy,
    ) -> Result<f64, WindexError> {
        let Some(kind) = strategy.index_kind() else {
            return Ok(0.0);
        };
        if !self.r.is_sorted_unique() {
            return Err(QueryError::IndexedRelationNotSorted.into());
        }
        if self.built.contains_key(&kind) {
            return Ok(0.0);
        }
        let before = gpu.snapshot();
        self.index(gpu, kind);
        let delta = gpu.snapshot() - before;
        Ok(CostModel::new(gpu.spec()).estimate(&delta, false).total_s)
    }

    /// Override the partition-bit selection made at staging time (the §4.2
    /// rule with the executor's cap). The tuner re-resolves bits when a
    /// candidate plan carries a different bit budget.
    pub fn set_partition_bits(&mut self, bits: PartitionBits) {
        self.bits = bits;
    }

    /// The partition bits the next run will use.
    pub fn partition_bits(&self) -> PartitionBits {
        self.bits
    }

    /// Capture a host-resident checkpoint of the session's device-dependent
    /// state: the set of built indexes, in deterministic order.
    pub fn checkpoint(&self) -> IndexCheckpoint {
        let kinds = IndexKind::all()
            .into_iter()
            .filter(|k| self.built.contains_key(k))
            .collect();
        IndexCheckpoint { kinds }
    }

    /// Rebuild every index named by `ckpt` from the host-resident staged
    /// column. Existing builds of the same kinds are dropped first, so the
    /// restored structures are fresh (new addresses, nothing cached).
    pub fn restore(&mut self, gpu: &mut Gpu, ckpt: &IndexCheckpoint) {
        for &kind in ckpt.kinds() {
            self.built.remove(&kind);
            self.index(gpu, kind);
        }
    }

    /// Recover from a whole-device loss: discard every built index (the
    /// replacement device starts empty), flush the memory system, wait out
    /// the loss window on the virtual clock, and rebuild from the
    /// checkpoint. Returns the recovery event carrying the MTTR — outage
    /// wait plus the cost-model estimate of the rebuild.
    fn recover_from_device_loss(&mut self, gpu: &mut Gpu) -> DegradationEvent {
        let lost_at_s = gpu.virtual_now_s();
        let ckpt = self.checkpoint();
        self.built.clear();
        // The replacement device has cold caches and a cold TLB; nothing
        // the lost device cached survives.
        gpu.reset_memory_system();
        // Wait out the loss window (and any chained ones) on the virtual
        // clock before touching the device again.
        let clearance_s = gpu.chaos_clearance_s().max(lost_at_s);
        gpu.set_virtual_time(clearance_s);
        // Rebuild from the host-resident relation, pricing the rebuild
        // through the cost model so MTTR reflects the work done.
        let before = gpu.snapshot();
        self.restore(gpu, &ckpt);
        let delta = gpu.snapshot() - before;
        let rebuild_s = CostModel::new(gpu.spec()).estimate(&delta, false).total_s;
        gpu.advance_virtual_time(rebuild_s);
        let mttr_s = (clearance_s - lost_at_s) + rebuild_s;
        DegradationEvent::DeviceLossRecovered {
            mttr_ns: (mttr_s * 1e9).round() as u64,
        }
    }

    fn page_round(page: u64, bytes: u64) -> u64 {
        bytes.div_ceil(page).max(1) * page
    }

    /// Device bytes the plan needs to stage before any query work runs:
    /// the partitioner's staging + output pairs (16 B per tuple each) for
    /// one window (or the whole probe side), plus the result sink if it
    /// lives in GPU memory. Reservations are page-rounded exactly like the
    /// allocator rounds them.
    fn staging_footprint(
        &self,
        gpu: &Gpu,
        plan: JoinStrategy,
        sink_loc: MemLocation,
        probe_tuples: usize,
    ) -> u64 {
        let page = gpu.spec().page_bytes;
        let n = probe_tuples.max(1) as u64;
        let pair_bufs = |tuples: u64| 2 * Self::page_round(page, tuples * 16);
        let stage = match plan {
            // The hash join plans its own build chunking against the live
            // headroom; the INLJ streams probe keys without staging.
            JoinStrategy::HashJoin | JoinStrategy::Inlj { .. } => 0,
            JoinStrategy::PartitionedInlj { .. } => pair_bufs(n),
            JoinStrategy::WindowedInlj { window_tuples, .. } => {
                pair_bufs((window_tuples as u64).min(n))
            }
        };
        let sink = match sink_loc {
            MemLocation::Gpu => Self::page_round(page, n * 16),
            MemLocation::Cpu => 0,
        };
        stage + sink
    }

    /// Apply one rung of the degradation ladder to `plan` / `sink_loc`.
    /// Returns `false` when no further degradation exists (the plan is
    /// already the CPU-sink hash join).
    fn degrade(
        plan: &mut JoinStrategy,
        sink_loc: &mut MemLocation,
        probe_tuples: usize,
        events: &mut Vec<DegradationEvent>,
    ) -> bool {
        match *plan {
            JoinStrategy::WindowedInlj {
                index,
                window_tuples,
            } if window_tuples > MIN_WINDOW_TUPLES => {
                let to = (window_tuples / 2).max(MIN_WINDOW_TUPLES);
                events.push(DegradationEvent::WindowShrunk {
                    from: window_tuples,
                    to,
                });
                *plan = JoinStrategy::WindowedInlj {
                    index,
                    window_tuples: to,
                };
                true
            }
            JoinStrategy::PartitionedInlj { index } => {
                let window_tuples = (probe_tuples / 2).max(MIN_WINDOW_TUPLES);
                events.push(DegradationEvent::PartitionDegradedToWindow { window_tuples });
                *plan = JoinStrategy::WindowedInlj {
                    index,
                    window_tuples,
                };
                true
            }
            _ if *sink_loc == MemLocation::Gpu => {
                events.push(DegradationEvent::ResultsSpilledToCpu);
                *sink_loc = MemLocation::Cpu;
                true
            }
            JoinStrategy::WindowedInlj { .. } | JoinStrategy::Inlj { .. } => {
                events.push(DegradationEvent::FellBackToHashJoin);
                *plan = JoinStrategy::HashJoin;
                true
            }
            JoinStrategy::HashJoin => false,
        }
    }

    /// Run one query over the staged data. Identical measurement semantics
    /// to [`QueryExecutor::run`], except that staging and index builds are
    /// shared across calls — so with `cold_start = false`, repeated runs
    /// genuinely reuse TLB and cache state.
    ///
    /// Under memory pressure or injected faults the plan is degraded (see
    /// the [module docs](self)) rather than failed; every step lands in
    /// [`QueryReport::degradations`]. Device buffers allocated by the run
    /// are released before it returns, so repeated runs are budget-stable.
    pub fn run(
        &mut self,
        gpu: &mut Gpu,
        strategy: JoinStrategy,
    ) -> Result<QueryReport, WindexError> {
        let probe = Rc::clone(&self.s_col);
        let n = probe.len();
        self.run_probe(gpu, strategy, &probe, n)
    }

    /// Run one query probing the staged indexed relation with an ad-hoc key
    /// batch instead of the staged probe relation — the serving dispatch
    /// path, where each batch aggregates queued per-tenant request keys.
    ///
    /// The keys are staged into CPU memory for the duration of the run and
    /// released before returning. Under
    /// [`QueryExecutor::validate_foreign_keys`] the batch must lie inside
    /// the indexed relation's key domain, exactly like staging a probe
    /// relation would require.
    pub fn run_batch(
        &mut self,
        gpu: &mut Gpu,
        strategy: JoinStrategy,
        keys: &[u64],
    ) -> Result<QueryReport, WindexError> {
        if self.executor.validate_foreign_keys {
            match (self.r.min_key(), self.r.max_key()) {
                (Some(lo), Some(hi)) => {
                    if keys.iter().any(|&k| k < lo || k > hi) {
                        return Err(QueryError::ForeignKeyViolation.into());
                    }
                }
                _ => {
                    if !keys.is_empty() {
                        return Err(QueryError::ForeignKeyViolation.into());
                    }
                }
            }
        }
        let probe = Rc::new(gpu.alloc_host_from_vec(keys.to_vec()));
        let n = probe.len();
        let out = self.run_probe(gpu, strategy, &probe, n);
        if let Ok(col) = Rc::try_unwrap(probe) {
            gpu.free(col);
        }
        out
    }

    fn run_probe(
        &mut self,
        gpu: &mut Gpu,
        strategy: JoinStrategy,
        probe: &Rc<Buffer<u64>>,
        n: usize,
    ) -> Result<QueryReport, WindexError> {
        if let Some(kind) = strategy.index_kind() {
            if !self.r.is_sorted_unique() {
                return Err(QueryError::IndexedRelationNotSorted.into());
            }
            self.index(gpu, kind); // ensure built before the measured region
        }
        let min_key = self.r.min_key().unwrap_or(0);
        let bits = self.bits;
        let mut degradations = Vec::new();
        let mut plan = strategy;
        let mut sink_loc = self.executor.result_location;
        let mut loss_recoveries = 0usize;

        let (result_tuples, windows, build_passes, delta, sink, phases, window_timeline) = loop {
            // A query admitted while a device-loss window is already open
            // would fail its first allocation; recover up front instead.
            if gpu.device_lost() && loss_recoveries < MAX_DEVICE_LOSS_RECOVERIES {
                loss_recoveries += 1;
                degradations.push(self.recover_from_device_loss(gpu));
            }
            // Admission check: degrade until the staging footprint fits the
            // device-memory headroom (or the ladder bottoms out at the
            // CPU-sink hash join, whose footprint is zero).
            while self.staging_footprint(gpu, plan, sink_loc, n) > gpu.gpu_headroom() {
                if !Self::degrade(&mut plan, &mut sink_loc, n, &mut degradations) {
                    break;
                }
            }
            let mut sink = ResultSink::with_capacity(gpu, n.max(1), sink_loc)?;

            // ---- measured region ----
            if self.executor.cold_start {
                gpu.reset_memory_system();
            }
            let before = gpu.snapshot();
            // The recorder decomposes the measured region into phases; a
            // fresh one per attempt so a degraded retry starts clean.
            let mut rec = PhaseRecorder::start(gpu);
            let mut timeline: Vec<WindowSpan> = Vec::new();
            let mut windows = 0;
            let mut build_passes = 1;
            let outcome: Result<usize, WindexError> = match plan {
                JoinStrategy::HashJoin => {
                    let (build, probe_col) = if probe.len() <= self.r_col.len() {
                        (&**probe, &*self.r_col)
                    } else {
                        (&*self.r_col, &**probe)
                    };
                    // Build and probe are fused in one operator call; the
                    // whole join is attributed to the lookup phase.
                    rec.begin(gpu, phase::LOOKUP);
                    hash_join(gpu, build, probe_col, self.executor.hash_join, &mut sink)
                        .map(|stats| {
                            build_passes = stats.build_passes;
                            stats.matches
                        })
                        .map_err(WindexError::from)
                }
                JoinStrategy::Inlj { index } => {
                    let idx = self.built[&index].as_dyn();
                    rec.begin(gpu, phase::LOOKUP);
                    inlj_stream(gpu, idx, probe, 0..n, &mut sink).map_err(WindexError::from)
                }
                JoinStrategy::PartitionedInlj { index } => {
                    let idx = self.built[&index].as_dyn();
                    let part = RadixPartitioner::new(bits, min_key);
                    rec.begin(gpu, phase::PARTITION);
                    match part.partition_stream(gpu, probe, 0..n) {
                        Ok(all) => {
                            rec.begin(gpu, phase::LOOKUP);
                            let probed = inlj_pairs(gpu, idx, &all.pairs, 0..all.len(), &mut sink);
                            all.free(gpu);
                            probed.map_err(WindexError::from)
                        }
                        Err(e) => Err(e.into()),
                    }
                }
                JoinStrategy::WindowedInlj {
                    index,
                    window_tuples,
                } => {
                    let idx = self.built[&index].as_dyn();
                    let cfg = WindowConfig {
                        window_tuples,
                        bits,
                        min_key,
                    };
                    let obs = WindowObserver {
                        phases: Some(&mut rec),
                        timeline: Some(&mut timeline),
                    };
                    windowed_inlj_observed(gpu, idx, probe, 0..n, cfg, &mut sink, obs).map(
                        |stats| {
                            windows = stats.windows;
                            stats.matches
                        },
                    )
                }
            };
            let after = gpu.snapshot();
            // ---- end measured region ----
            match outcome {
                Ok(result_tuples) => {
                    let phases = rec.finish(gpu);
                    break (
                        result_tuples,
                        windows,
                        build_passes,
                        after - before,
                        sink,
                        phases,
                        timeline,
                    );
                }
                Err(e) => {
                    sink.free(gpu);
                    if e.is_device_loss() && loss_recoveries < MAX_DEVICE_LOSS_RECOVERIES {
                        loss_recoveries += 1;
                        degradations.push(self.recover_from_device_loss(gpu));
                        continue;
                    }
                    if e.is_capacity()
                        && Self::degrade(&mut plan, &mut sink_loc, n, &mut degradations)
                    {
                        continue;
                    }
                    return Err(e);
                }
            }
        };

        if build_passes > 1 {
            degradations.push(DegradationEvent::HashBuildChunked {
                passes: build_passes,
            });
        }
        if sink.spill_count() > 0 && !degradations.contains(&DegradationEvent::ResultsSpilledToCpu)
        {
            degradations.push(DegradationEvent::ResultsSpilledToCpu);
        }
        let result_spilled = sink.location() == MemLocation::Cpu
            && self.executor.result_location == MemLocation::Gpu;
        sink.free(gpu);

        let effective_overlap = self.executor.overlap
            && match plan {
                JoinStrategy::WindowedInlj { .. } => windows >= 2,
                _ => true,
            };
        let cm = CostModel::new(gpu.spec());
        let time = cm.estimate(&delta, effective_overlap);
        let index_aux_bytes = plan
            .index_kind()
            .map_or(0, |k| self.built[&k].as_dyn().aux_bytes());
        let effective_window_tuples = match plan {
            JoinStrategy::WindowedInlj { window_tuples, .. } => Some(window_tuples),
            _ => None,
        };
        Ok(QueryReport {
            strategy: plan.label(),
            index: plan.index_kind(),
            r_tuples: self.r.len(),
            s_tuples: n,
            paper_r_gib: gpu.spec().scale.paper_gib_for_sim_tuples(self.r.len()),
            selectivity: if self.r.is_empty() {
                0.0
            } else {
                n as f64 / self.r.len() as f64
            },
            result_tuples,
            windows,
            counters: delta,
            time,
            transfer_volume_paper_bytes: cm.transfer_volume_bytes(&delta),
            index_aux_bytes,
            degradations,
            retries: delta.retries,
            effective_window_tuples,
            result_spilled,
            phases,
            window_timeline,
        })
    }

    /// Mutable access to the executor settings (e.g. toggle `cold_start`
    /// between runs).
    pub fn executor_mut(&mut self) -> &mut QueryExecutor {
        &mut self.executor
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use windex_sim::{GpuSpec, Scale};
    use windex_workload::KeyDistribution;

    fn gpu() -> Gpu {
        Gpu::new(GpuSpec::v100_nvlink2(Scale::PAPER))
    }

    fn session(gpu: &mut Gpu) -> QuerySession {
        let r = Relation::unique_sorted(1 << 15, KeyDistribution::Dense, 1);
        let s = Relation::foreign_keys_uniform(&r, 1 << 11, 2);
        QuerySession::new(gpu, QueryExecutor::new(), r, s).unwrap()
    }

    #[test]
    fn session_matches_one_shot_executor() {
        let mut g = gpu();
        let mut sess = session(&mut g);
        let st = JoinStrategy::WindowedInlj {
            index: IndexKind::RadixSpline,
            window_tuples: 256,
        };
        let a = sess.run(&mut g, st).unwrap();
        // One-shot run over equal data.
        let r = sess.indexed_relation().clone();
        let s = sess.probe_relation().clone();
        let mut g2 = gpu();
        let b = QueryExecutor::new().run(&mut g2, &r, &s, st).unwrap();
        assert_eq!(a.result_tuples, b.result_tuples);
        assert_eq!(a.counters, b.counters, "session must measure identically");
    }

    #[test]
    fn indexes_are_built_once() {
        let mut g = gpu();
        let mut sess = session(&mut g);
        let st = JoinStrategy::Inlj {
            index: IndexKind::BPlusTree,
        };
        let _ = sess.run(&mut g, st).unwrap();
        let aux1 = sess
            .index(&mut g, IndexKind::BPlusTree)
            .as_dyn()
            .aux_bytes();
        let _ = sess.run(&mut g, st).unwrap();
        let aux2 = sess
            .index(&mut g, IndexKind::BPlusTree)
            .as_dyn()
            .aux_bytes();
        assert_eq!(aux1, aux2);
        assert_eq!(sess.built.len(), 1);
    }

    #[test]
    fn warm_rerun_reuses_translations() {
        let mut g = gpu();
        let mut sess = session(&mut g);
        let st = JoinStrategy::Inlj {
            index: IndexKind::BinarySearch,
        };
        let cold = sess.run(&mut g, st).unwrap();
        sess.executor_mut().cold_start = false;
        let warm = sess.run(&mut g, st).unwrap();
        // Same work, strictly fewer TLB misses: addresses are shared now.
        assert_eq!(cold.result_tuples, warm.result_tuples);
        assert!(
            warm.counters.tlb_misses < cold.counters.tlb_misses,
            "warm {} vs cold {}",
            warm.counters.tlb_misses,
            cold.counters.tlb_misses
        );
    }

    #[test]
    fn rejects_unsorted_relation_for_index_strategies_only() {
        let mut g = gpu();
        let r = Relation::from_keys(vec![3, 1], false);
        let s = Relation::from_keys(vec![1], false);
        let mut sess = QuerySession::new(&mut g, QueryExecutor::new(), r, s).unwrap();
        assert_eq!(
            sess.run(
                &mut g,
                JoinStrategy::Inlj {
                    index: IndexKind::BinarySearch
                }
            )
            .unwrap_err(),
            WindexError::Query(QueryError::IndexedRelationNotSorted)
        );
        // The hash join does not need sorted inputs.
        let rep = sess.run(&mut g, JoinStrategy::HashJoin).unwrap();
        assert_eq!(rep.result_tuples, 1);
    }

    #[test]
    fn rejects_probe_keys_outside_indexed_domain() {
        let mut g = gpu();
        let r = Relation::from_keys(vec![10, 20, 30], true);
        let s = Relation::from_keys(vec![20, 31], false);
        let err = QuerySession::new(&mut g, QueryExecutor::new(), r, s).unwrap_err();
        assert_eq!(err, WindexError::Query(QueryError::ForeignKeyViolation));

        // Empty indexed relation: any probe key violates.
        let r = Relation::from_keys(vec![], true);
        let s = Relation::from_keys(vec![1], false);
        let err = QuerySession::new(&mut g, QueryExecutor::new(), r, s).unwrap_err();
        assert_eq!(err, WindexError::Query(QueryError::ForeignKeyViolation));

        // Validation can be disabled for non-FK workloads.
        let mut ex = QueryExecutor::new();
        ex.validate_foreign_keys = false;
        let r = Relation::from_keys(vec![10, 20, 30], true);
        let s = Relation::from_keys(vec![20, 31], false);
        let mut sess = QuerySession::new(&mut g, ex, r, s).unwrap();
        let rep = sess.run(&mut g, JoinStrategy::HashJoin).unwrap();
        assert_eq!(rep.result_tuples, 1);
    }

    #[test]
    fn fault_free_runs_report_no_degradations() {
        let mut g = gpu();
        let mut sess = session(&mut g);
        let rep = sess
            .run(
                &mut g,
                JoinStrategy::WindowedInlj {
                    index: IndexKind::RadixSpline,
                    window_tuples: 256,
                },
            )
            .unwrap();
        assert!(rep.degradations.is_empty());
        assert_eq!(rep.retries, 0);
        assert_eq!(rep.effective_window_tuples, Some(256));
        assert!(!rep.result_spilled);
    }

    #[test]
    fn tight_budget_shrinks_the_window() {
        let mut spec = GpuSpec::v100_nvlink2(Scale::PAPER);
        spec.page_bytes = 4096;
        // Room for the sink (one page-rounded 2^11·16 B buffer) plus a
        // handful of small pair buffers — but not a 2^11-tuple window.
        spec.hbm_bytes = 80 * 1024;
        let mut g = Gpu::new(spec);
        let r = Relation::unique_sorted(1 << 13, KeyDistribution::Dense, 1);
        let s = Relation::foreign_keys_uniform(&r, 1 << 11, 2);
        let mut sess = QuerySession::new(&mut g, QueryExecutor::new(), r, s).unwrap();
        let rep = sess
            .run(
                &mut g,
                JoinStrategy::WindowedInlj {
                    index: IndexKind::BinarySearch,
                    window_tuples: 1 << 11,
                },
            )
            .unwrap();
        assert_eq!(rep.result_tuples, 1 << 11);
        assert!(
            rep.degradations
                .iter()
                .any(|e| matches!(e, DegradationEvent::WindowShrunk { .. })),
            "degradations: {:?}",
            rep.degradations
        );
        let w = rep.effective_window_tuples.unwrap();
        assert!(w < 1 << 11);
        // The session released everything it allocated.
        assert_eq!(g.live_gpu_bytes(), 0);
    }

    #[test]
    fn degraded_run_equals_fault_free_result() {
        let r = Relation::unique_sorted(1 << 13, KeyDistribution::Dense, 1);
        let s = Relation::foreign_keys_uniform(&r, 1 << 11, 2);
        let st = JoinStrategy::WindowedInlj {
            index: IndexKind::BinarySearch,
            window_tuples: 1 << 11,
        };

        let mut g = gpu();
        let mut sess =
            QuerySession::new(&mut g, QueryExecutor::new(), r.clone(), s.clone()).unwrap();
        let plenty = sess.run(&mut g, st).unwrap();

        let mut spec = GpuSpec::v100_nvlink2(Scale::PAPER);
        spec.page_bytes = 4096;
        spec.hbm_bytes = 64 * 1024;
        let mut g2 = Gpu::new(spec);
        let mut tight = QuerySession::new(&mut g2, QueryExecutor::new(), r, s).unwrap();
        let degraded = tight.run(&mut g2, st).unwrap();

        assert_eq!(degraded.result_tuples, plenty.result_tuples);
        assert!(!degraded.degradations.is_empty());
    }

    #[test]
    fn partitioned_inlj_degrades_to_windowed_under_pressure() {
        let mut spec = GpuSpec::v100_nvlink2(Scale::PAPER);
        spec.page_bytes = 4096;
        spec.hbm_bytes = 96 * 1024;
        let mut g = Gpu::new(spec);
        let r = Relation::unique_sorted(1 << 13, KeyDistribution::Dense, 1);
        let s = Relation::foreign_keys_uniform(&r, 1 << 12, 2);
        let mut sess = QuerySession::new(&mut g, QueryExecutor::new(), r, s).unwrap();
        let rep = sess
            .run(
                &mut g,
                JoinStrategy::PartitionedInlj {
                    index: IndexKind::BinarySearch,
                },
            )
            .unwrap();
        assert_eq!(rep.result_tuples, 1 << 12);
        assert!(
            rep.degradations
                .iter()
                .any(|e| matches!(e, DegradationEvent::PartitionDegradedToWindow { .. })),
            "degradations: {:?}",
            rep.degradations
        );
        assert_eq!(g.live_gpu_bytes(), 0);
    }

    #[test]
    fn device_loss_is_recovered_with_finite_mttr() {
        use windex_sim::{ChaosKind, ChaosSchedule};
        let mut g = gpu();
        let mut sess = session(&mut g);
        let st = JoinStrategy::WindowedInlj {
            index: IndexKind::RadixSpline,
            window_tuples: 256,
        };
        let calm = sess.run(&mut g, st).unwrap();
        // The device is lost for 10 ms starting now (virtual t = 0).
        g.set_chaos_schedule(ChaosSchedule::seeded(9).with_window(
            ChaosKind::DeviceLoss,
            0.0,
            0.010,
        ))
        .unwrap();
        assert!(g.device_lost());
        let rep = sess.run(&mut g, st).unwrap();
        // The query completed with the same result, recorded the recovery,
        // and measured a finite MTTR of at least the outage wait.
        assert_eq!(rep.result_tuples, calm.result_tuples);
        let mttr = rep
            .degradations
            .iter()
            .find_map(|e| match e {
                DegradationEvent::DeviceLossRecovered { mttr_ns } => Some(*mttr_ns),
                _ => None,
            })
            .expect("recovery must be recorded");
        assert!(mttr >= 10_000_000, "MTTR {mttr} ns < 10 ms outage");
        assert!(g.virtual_now_s() >= 0.010, "clock must pass the window");
        assert!(!g.device_lost());
        assert_eq!(g.live_gpu_bytes(), 0, "recovery must not leak");
    }

    #[test]
    fn checkpoint_restore_round_trips_built_indexes() {
        let mut g = gpu();
        let mut sess = session(&mut g);
        sess.index(&mut g, IndexKind::BPlusTree);
        sess.index(&mut g, IndexKind::RadixSpline);
        let ckpt = sess.checkpoint();
        assert_eq!(
            ckpt.kinds(),
            &[IndexKind::BPlusTree, IndexKind::RadixSpline],
            "checkpoint order must be deterministic"
        );
        assert!(!ckpt.is_empty());
        sess.built.clear();
        sess.restore(&mut g, &ckpt);
        assert_eq!(sess.built.len(), 2);
        // Restored indexes answer lookups like the originals.
        let key = sess.r.keys()[100];
        assert_eq!(
            sess.built[&IndexKind::BPlusTree]
                .as_dyn()
                .lookup(&mut g, key),
            Some(100)
        );
        // An empty session checkpoints to an empty recipe.
        let mut g2 = gpu();
        let fresh = session(&mut g2);
        assert!(fresh.checkpoint().is_empty());
    }

    #[test]
    fn recovered_runs_stay_deterministic() {
        use windex_sim::{ChaosKind, ChaosSchedule};
        let run_once = || {
            let mut g = gpu();
            g.set_chaos_schedule(ChaosSchedule::seeded(9).with_window(
                ChaosKind::DeviceLoss,
                0.0,
                0.010,
            ))
            .unwrap();
            let mut sess = session(&mut g);
            let st = JoinStrategy::WindowedInlj {
                index: IndexKind::RadixSpline,
                window_tuples: 256,
            };
            let rep = sess.run(&mut g, st).unwrap();
            (rep.result_tuples, rep.counters, rep.degradations)
        };
        let a = run_once();
        let b = run_once();
        assert_eq!(a.0, b.0);
        assert_eq!(a.1, b.1, "recovered runs must measure identically");
        assert_eq!(a.2, b.2, "recovery events must be identical");
    }

    #[test]
    fn run_batch_matches_staged_probe_run() {
        let mut g = gpu();
        let r = Relation::unique_sorted(1 << 13, KeyDistribution::Dense, 1);
        let s = Relation::foreign_keys_uniform(&r, 1 << 10, 2);
        let keys = s.keys().to_vec();
        let mut sess = QuerySession::new(&mut g, QueryExecutor::new(), r.clone(), s).unwrap();
        let st = JoinStrategy::WindowedInlj {
            index: IndexKind::RadixSpline,
            window_tuples: 256,
        };
        let staged = sess.run(&mut g, st).unwrap();
        // The same keys dispatched as an ad-hoc batch join identically.
        let batch = sess.run_batch(&mut g, st, &keys).unwrap();
        assert_eq!(batch.result_tuples, staged.result_tuples);
        assert_eq!(batch.s_tuples, staged.s_tuples);
        assert!((batch.selectivity - staged.selectivity).abs() < 1e-12);
        // Batch staging is released (only the session's columns remain).
        let live = g.live_gpu_bytes();
        sess.run_batch(&mut g, st, &keys).unwrap();
        assert_eq!(g.live_gpu_bytes(), live);
        // FK validation applies to batches too.
        let out_of_domain = [r.max_key().unwrap() + 1];
        assert_eq!(
            sess.run_batch(&mut g, st, &out_of_domain).unwrap_err(),
            WindexError::Query(QueryError::ForeignKeyViolation)
        );
    }

    #[test]
    fn prepare_strategy_builds_once_and_prices_the_build() {
        let mut g = gpu();
        let mut sess = session(&mut g);
        let st = JoinStrategy::WindowedInlj {
            index: IndexKind::BPlusTree,
            window_tuples: 256,
        };
        // Index construction is host-side (§3.2: "the index already
        // exists"), so the priced cost is finite and non-negative — today
        // 0.0 — and the build lands in the session cache.
        let first = sess.prepare_strategy(&mut g, st).unwrap();
        assert!(first.is_finite() && first >= 0.0);
        assert_eq!(sess.built.len(), 1);
        let again = sess.prepare_strategy(&mut g, st).unwrap();
        assert_eq!(again, 0.0, "cached index must be free");
        assert_eq!(sess.built.len(), 1);
        assert_eq!(
            sess.prepare_strategy(&mut g, JoinStrategy::HashJoin)
                .unwrap(),
            0.0
        );
    }

    #[test]
    fn runs_are_budget_stable() {
        let mut g = gpu();
        let mut sess = session(&mut g);
        let st = JoinStrategy::WindowedInlj {
            index: IndexKind::RadixSpline,
            window_tuples: 256,
        };
        sess.run(&mut g, st).unwrap();
        let live_after_first = g.live_gpu_bytes();
        for _ in 0..3 {
            sess.run(&mut g, st).unwrap();
        }
        assert_eq!(g.live_gpu_bytes(), live_after_first);
    }
}
