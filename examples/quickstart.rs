//! Quickstart: build an out-of-core index, run a windowed INLJ, read the
//! report.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use windex::prelude::*;

fn main() -> Result<(), WindexError> {
    // A simulated V100 attached over NVLink 2.0, at the default 1024x
    // reproduction scale (1 paper-GiB of data = 1 simulated MiB).
    let scale = Scale::PAPER;
    let mut gpu = Gpu::new(GpuSpec::v100_nvlink2(scale));

    // The paper's workload (§3.2): R holds unique sorted keys and lives in
    // CPU memory; S holds foreign keys into R. Here R represents 64 GiB —
    // past the V100's 32 GiB TLB range, where windowed partitioning earns
    // its keep.
    let r = Relation::unique_sorted(
        scale.sim_tuples_for_paper_gib(64.0),
        KeyDistribution::Dense,
        42,
    );
    let s = Relation::foreign_keys_uniform(&r, 1 << 14, 7);
    println!(
        "R = {} tuples ({:.1} GiB at paper scale), S = {} tuples, selectivity {:.2}%",
        r.len(),
        scale.paper_gib_for_sim_tuples(r.len()),
        s.len(),
        100.0 * join_selectivity(&r, &s),
    );

    // Run the paper's contribution: an INLJ over tumbling partitioning
    // windows, probing a RadixSpline (the recommended index, §6).
    let report = QueryExecutor::new().run(
        &mut gpu,
        &r,
        &s,
        JoinStrategy::WindowedInlj {
            index: IndexKind::RadixSpline,
            window_tuples: 1 << 12, // = the paper's 32 MiB window
        },
    )?;

    println!("\nstrategy:            {}", report.strategy);
    println!("result tuples:       {}", report.result_tuples);
    println!("windows processed:   {}", report.windows);
    println!(
        "transfer volume:     {:.2} GiB (paper scale)",
        report.transfer_volume_paper_bytes as f64 / (1u64 << 30) as f64
    );
    println!(
        "translations/lookup: {:.4}",
        report.translations_per_lookup()
    );
    println!(
        "estimated time:      {:.4} s  ->  {:.2} queries/s",
        report.time.total_s,
        report.queries_per_second()
    );

    // Compare against the hash-join baseline on the same data.
    let mut gpu2 = Gpu::new(GpuSpec::v100_nvlink2(scale));
    let hash = QueryExecutor::new().run(&mut gpu2, &r, &s, JoinStrategy::HashJoin)?;
    println!(
        "\nhash-join baseline:  {:.2} queries/s ({:.2} GiB transferred)",
        hash.queries_per_second(),
        hash.transfer_volume_paper_bytes as f64 / (1u64 << 30) as f64
    );
    println!(
        "windowed INLJ moves {:.0}x less data across the interconnect",
        hash.transfer_volume_paper_bytes as f64 / report.transfer_volume_paper_bytes as f64
    );
    Ok(())
}
