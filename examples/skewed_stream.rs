//! Skewed probe streams: how the windowed INLJ and the hash join react to
//! Zipf-distributed lookup keys (§5.2.2 / Fig. 8).
//!
//! Skew is a *gift* to the index join — hot traversal paths stay in the
//! GPU's on-chip caches — but a *hazard* to the multi-value hash join,
//! whose build side degenerates into long value-block chains.
//!
//! ```sh
//! cargo run --release --example skewed_stream
//! ```

use windex::prelude::*;

fn main() -> Result<(), WindexError> {
    let scale = Scale::PAPER;
    let gpu_template = || Gpu::new(GpuSpec::v100_nvlink2(scale));
    let r = Relation::unique_sorted(
        scale.sim_tuples_for_paper_gib(48.0),
        KeyDistribution::SparseUniform,
        42,
    );

    println!(
        "{:>6} | {:>13} {:>11} {:>10} | {:>12}",
        "zipf", "windowed(RS)", "L1 hit(%)", "tx/lookup", "hash-join"
    );
    for z in [0.0, 0.5, 1.0, 1.25, 1.5, 1.75] {
        let s = Relation::foreign_keys_zipf(&r, 1 << 13, z, 7);

        let mut gpu = gpu_template();
        let inlj = QueryExecutor::new().run(
            &mut gpu,
            &r,
            &s,
            JoinStrategy::WindowedInlj {
                index: IndexKind::RadixSpline,
                window_tuples: 1 << 12,
            },
        )?;

        let mut gpu = gpu_template();
        let hash = QueryExecutor::new().run(&mut gpu, &r, &s, JoinStrategy::HashJoin)?;

        // The simulated hash-join estimate understates the quadratic
        // chain-append blowup at high skew; the experiment harness
        // (`experiments fig8`) adds the documented analytic correction and
        // reports DNF where the paper terminated its run.
        println!(
            "{:>6.2} | {:>13.2} {:>11.1} {:>10.4} | {:>12.2}",
            z,
            inlj.queries_per_second(),
            100.0 * inlj.counters.l1_hit_rate(),
            inlj.translations_per_lookup(),
            hash.queries_per_second(),
        );
    }

    println!(
        "\nSkew raises the windowed INLJ's cache hit rate and throughput \
         (§5.2.2: above exponent 1.0),\nwhile duplicate build keys stretch \
         the hash table's value chains — the paper terminated its\nhash-join \
         run after 10 hours at high skew."
    );
    Ok(())
}
