//! Selective join: the TPC-H Q4/Q12-style scenario that motivates the paper.
//!
//! A large fact table is joined with a much smaller input — the join touches
//! only a small fraction of the indexed relation. This example sweeps the
//! selectivity (by scaling R with S fixed, as in §3.2) and compares every
//! execution strategy, printing where the index joins overtake the hash
//! join's full table scan.
//!
//! ```sh
//! cargo run --release --example selective_join
//! ```

use windex::prelude::*;

fn main() -> Result<(), WindexError> {
    let scale = Scale::PAPER;
    let s_tuples = 1 << 14;

    println!(
        "{:>9} {:>7} | {:>10} {:>12} {:>14} {:>15}",
        "R (GiB)", "sel(%)", "hash-join", "inlj(RS)", "part-inlj(RS)", "windowed(RS)"
    );
    for paper_gib in [0.5, 2.0, 8.0, 32.0, 64.0, 111.0] {
        let r = Relation::unique_sorted(
            scale.sim_tuples_for_paper_gib(paper_gib),
            KeyDistribution::SparseUniform,
            42,
        );
        let s = Relation::foreign_keys_uniform(&r, s_tuples, 7);

        let strategies = [
            JoinStrategy::HashJoin,
            JoinStrategy::Inlj {
                index: IndexKind::RadixSpline,
            },
            JoinStrategy::PartitionedInlj {
                index: IndexKind::RadixSpline,
            },
            JoinStrategy::WindowedInlj {
                index: IndexKind::RadixSpline,
                window_tuples: 1 << 12,
            },
        ];
        let mut qps = Vec::new();
        for st in strategies {
            let mut gpu = Gpu::new(GpuSpec::v100_nvlink2(scale));
            let report = QueryExecutor::new().run(&mut gpu, &r, &s, st)?;
            assert_eq!(report.result_tuples, s.len(), "FK join returns |S| matches");
            qps.push(report.queries_per_second());
        }
        println!(
            "{:>9.1} {:>7.2} | {:>10.2} {:>12.2} {:>14.2} {:>15.2}",
            paper_gib,
            100.0 * join_selectivity(&r, &s),
            qps[0],
            qps[1],
            qps[2],
            qps[3],
        );
    }

    println!(
        "\nReading the table: the hash join must scan all of R, so its \
         throughput decays ~1/|R|;\nthe windowed INLJ's cost follows |S| and \
         stays roughly flat — below some selectivity\nthe index join wins \
         (the paper measures the crossover at 8% on the V100, §5.2.3)."
    );
    Ok(())
}
