//! Streaming probes against a maintained index.
//!
//! Two extensions beyond the paper's batch evaluation, built from its own
//! suggestions:
//!
//! 1. **Stream processing semantics** (§5.1): probe tuples are *pushed* in
//!    batches into a [`StreamingWindowJoin`]; every full window is
//!    partitioned and joined on the fly, holding only one window of state.
//! 2. **Index maintenance** (§6: "Harmonia is a good alternative if the
//!    index must support inserts and updates"): new keys are inserted into
//!    a B+tree between stream epochs — incrementally, with node splits —
//!    and become visible to the next epoch's probes.
//!
//! ```sh
//! cargo run --release --example streaming_updates
//! ```

use windex::prelude::*;
use windex_core::streams::StreamingWindowJoin;
use windex_core::WindowConfig;
use windex_index::{BPlusTree, BPlusTreeConfig};
use windex_join::ResultSink;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut gpu = Gpu::new(GpuSpec::v100_nvlink2(Scale::PAPER));

    // Start with even keys 0, 2, 4, … indexed in a B+tree with insert
    // headroom.
    let n = 1 << 16;
    let initial: Vec<u64> = (0..n as u64).map(|i| i * 2).collect();
    let mut tree = BPlusTree::bulk_load(
        &mut gpu,
        &initial,
        BPlusTreeConfig {
            fill_factor: 0.7,
            spare_nodes: 4096,
            ..Default::default()
        },
    );
    println!(
        "built B+tree: {} keys, height {}, {} nodes",
        tree.len(),
        tree.height(),
        tree.node_count()
    );

    let bits = {
        let r = Relation::from_keys(initial.clone(), true);
        QueryExecutor::new().resolve_bits(&gpu, &r)
    };
    let cfg = WindowConfig {
        window_tuples: 1 << 10,
        bits,
        min_key: 0,
    };

    // Epoch 1: stream probes for even and odd keys; odd keys miss.
    let mut op = StreamingWindowJoin::new(&mut gpu, cfg)?;
    let mut sink = ResultSink::with_capacity(&mut gpu, 1 << 14, MemLocation::Gpu)?;
    let probes: Vec<(u64, u64)> = (0..1u64 << 13).map(|i| (i, i)).collect();
    for chunk in probes.chunks(700) {
        op.push(&mut gpu, &tree, chunk, &mut sink)?;
    }
    let epoch1 = op.finish(&mut gpu, &tree, &mut sink)?;
    println!(
        "epoch 1: {} windows, {} matches of {} probes (odd keys not indexed yet)",
        epoch1.windows,
        epoch1.matches,
        probes.len()
    );

    // Maintenance: insert the odd keys incrementally.
    let inserts = 1u64 << 12;
    for i in 0..inserts {
        tree.insert(i * 2 + 1, n as u64 + i)?;
    }
    println!(
        "inserted {} odd keys (tree now {} keys)",
        inserts,
        tree.len()
    );

    // Epoch 2: the same probe stream now matches the inserted keys too.
    op.reset();
    sink.clear();
    for chunk in probes.chunks(700) {
        op.push(&mut gpu, &tree, chunk, &mut sink)?;
    }
    let epoch2 = op.finish(&mut gpu, &tree, &mut sink)?;
    println!(
        "epoch 2: {} windows, {} matches (+{} from the inserts)",
        epoch2.windows,
        epoch2.matches,
        epoch2.matches - epoch1.matches
    );
    assert_eq!(epoch2.matches - epoch1.matches, inserts as usize);

    // For comparison: the same stream joined via the batched Harmonia path
    // (rebuild-style maintenance), using the high-level executor.
    let all_keys: Vec<u64> = {
        let mut k = initial;
        k.extend((0..inserts).map(|i| i * 2 + 1));
        k.sort_unstable();
        k
    };
    let r = Relation::from_keys(all_keys, true);
    let s = Relation::from_keys(probes.iter().map(|&(k, _)| k).collect(), false);
    let mut gpu2 = Gpu::new(GpuSpec::v100_nvlink2(Scale::PAPER));
    let report = QueryExecutor::new().run(
        &mut gpu2,
        &r,
        &s,
        JoinStrategy::WindowedInlj {
            index: IndexKind::Harmonia,
            window_tuples: 1 << 10,
        },
    )?;
    println!(
        "harmonia cross-check: {} matches at {:.2} queries/s",
        report.result_tuples,
        report.queries_per_second()
    );
    assert_eq!(report.result_tuples, epoch2.matches);
    Ok(())
}
