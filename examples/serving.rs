//! Serving: concurrent multi-tenant lookups batched into shared windows.
//!
//! The paper evaluates one big join at a time; a serving deployment instead
//! sees many small, concurrent lookup requests. Executed one-by-one, each
//! request pays the fixed per-window partitioning cost for a nearly empty
//! window. `windex-serve` coalesces keys from concurrent tenants into
//! shared partitioning windows and demultiplexes the matches back per
//! request — the same windowed INLJ, amortized across queries.
//!
//! Everything runs on the simulator's virtual clock: the same seed yields a
//! byte-identical trace and report.
//!
//! ```sh
//! cargo run --release --example serving
//! ```

use windex::prelude::*;

fn main() -> Result<(), WindexError> {
    let scale = Scale::PAPER;

    // The indexed relation: 8 paper-GiB of dense keys.
    let r = Relation::unique_sorted(
        scale.sim_tuples_for_paper_gib(8.0),
        KeyDistribution::Dense,
        42,
    );

    // A deterministic multi-tenant trace: 4 tenants, Poisson arrivals at
    // 50k requests/s, 1-16 keys per request — small point lookups, the
    // worst case for per-request window execution.
    let trace_cfg = TraceConfig {
        seed: 7,
        tenants: 4,
        requests: 512,
        min_keys: 1,
        max_keys: 16,
        offered_load_rps: 50_000.0,
        ..TraceConfig::default()
    };
    let trace = generate_trace(&trace_cfg, &r);
    let total_keys: usize = trace.iter().map(|t| t.request.keys.len()).sum();
    println!(
        "trace: {} requests from {} tenants, {} keys total, offered load {:.0} req/s",
        trace.len(),
        trace_cfg.tenants,
        total_keys,
        trace_cfg.offered_load_rps,
    );

    println!(
        "\n{:<26} {:>9} {:>9} {:>9} {:>11} {:>11}",
        "policy", "p50 (ms)", "p95 (ms)", "p99 (ms)", "keys/s", "batch keys"
    );
    let policies = [
        BatchPolicy::PerRequest,
        BatchPolicy::Shared {
            max_delay_s: 200e-6,
        },
    ];
    let mut p95 = Vec::new();
    for policy in policies {
        let mut gpu = Gpu::new(GpuSpec::v100_nvlink2(scale));
        let mut server = Server::new(
            &mut gpu,
            ServeConfig {
                policy,
                ..ServeConfig::default()
            },
            r.clone(),
        )?;
        let outcome = server.run(&mut gpu, &trace)?;
        let rep = &outcome.report;
        assert_eq!(rep.completed, trace.len(), "no load shedding at this rate");
        println!(
            "{:<26} {:>9.3} {:>9.3} {:>9.3} {:>11.0} {:>11.1}",
            rep.policy,
            rep.latency.p50_s * 1e3,
            rep.latency.p95_s * 1e3,
            rep.latency.p99_s * 1e3,
            rep.keys_per_second,
            rep.mean_batch_keys,
        );
        p95.push(rep.latency.p95_s);
    }

    println!(
        "\nShared windows fill before they flush, so the fixed per-window \
         partitioning cost is\namortized across tenants: p95 latency drops \
         {:.1}x versus per-request execution\nwhile every request still \
         receives exactly its own matches.",
        p95[0] / p95[1]
    );
    Ok(())
}
