//! The paper's motivating query, end to end.
//!
//! §3.2: "Our workload is inspired by queries such as TPC-H Q4 and Q12,
//! which have a large input to a single join with a low join selectivity."
//! This example builds a miniature ORDERS ⋈ LINEITEM instance, filters
//! LINEITEM with the Q4 predicate (one receipt quarter, commit date before
//! receipt date), and runs the resulting selective join with every
//! strategy.
//!
//! ```sh
//! cargo run --release --example tpch_q4
//! ```

use windex::prelude::*;
use windex_workload::TpchLite;

fn main() -> Result<(), WindexError> {
    let scale = Scale::PAPER;
    // ORDERS sized to 16 paper-GiB of keys; ~4 lineitems per order.
    let orders_n = scale.sim_tuples_for_paper_gib(16.0);
    let t = TpchLite::generate(orders_n, 4, 42);
    println!(
        "ORDERS: {} keys ({:.0} GiB at paper scale); LINEITEM: {} rows",
        t.orders().len(),
        scale.paper_gib_for_sim_tuples(t.orders().len()),
        t.lineitems(),
    );

    // Q4 predicate: one receipt quarter of the 7-year domain,
    // commitdate < receiptdate.
    let probe = t.q4_probe(13);
    println!(
        "Q4 probe stream: {} lineitems ({:.1}% of LINEITEM; selectivity vs ORDERS {:.2})",
        probe.len(),
        100.0 * probe.len() as f64 / t.lineitems() as f64,
        join_selectivity(t.orders(), &probe),
    );

    let strategies = [
        JoinStrategy::HashJoin,
        JoinStrategy::Inlj {
            index: IndexKind::RadixSpline,
        },
        JoinStrategy::WindowedInlj {
            index: IndexKind::RadixSpline,
            window_tuples: 1 << 12,
        },
        JoinStrategy::WindowedInlj {
            index: IndexKind::Harmonia,
            window_tuples: 1 << 12,
        },
    ];
    println!(
        "\n{:<42} {:>10} {:>12} {:>14}",
        "strategy", "matches", "Q/s", "transfer GiB"
    );
    for st in strategies {
        let mut gpu = Gpu::new(GpuSpec::v100_nvlink2(scale));
        let report = QueryExecutor::new().run(&mut gpu, t.orders(), &probe, st)?;
        assert_eq!(
            report.result_tuples,
            probe.len(),
            "every FK matches one order"
        );
        println!(
            "{:<42} {:>10} {:>12.2} {:>14.2}",
            report.strategy,
            report.result_tuples,
            report.queries_per_second(),
            report.transfer_volume_paper_bytes as f64 / (1u64 << 30) as f64,
        );
    }
    // Drill-down: one ship mode within one quarter — ~1.3 % selectivity,
    // inside the regime where the paper's index joins win.
    let drill = t.drilldown_probe(13, 2); // AIR, quarter 13
    println!(
        "\nDrill-down stream: {} lineitems (selectivity vs ORDERS {:.3})",
        drill.len(),
        join_selectivity(t.orders(), &drill),
    );
    let mut qps = Vec::new();
    for st in [
        JoinStrategy::HashJoin,
        JoinStrategy::WindowedInlj {
            index: IndexKind::RadixSpline,
            window_tuples: 1 << 12,
        },
    ] {
        let mut gpu = Gpu::new(GpuSpec::v100_nvlink2(scale));
        let report = QueryExecutor::new().run(&mut gpu, t.orders(), &drill, st)?;
        println!(
            "{:<42} {:>10} {:>12.2}",
            report.strategy,
            report.result_tuples,
            report.queries_per_second()
        );
        qps.push(report.queries_per_second());
    }
    println!(
        "\nAt Q4's ~9% selectivity the table scan still wins; the drill-down's \
         ~1.3% flips it\nto the windowed INLJ ({:.1}x) — the crossover behaviour \
         of §5.2.3.",
        qps[1] / qps[0]
    );
    Ok(())
}
