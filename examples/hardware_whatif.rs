//! Hardware what-if: replay the same selective join on every modeled
//! platform, including Table 1 hardware the paper only tabulates (GH200
//! with NVLink C2C).
//!
//! ```sh
//! cargo run --release --example hardware_whatif
//! ```

use windex::prelude::*;

fn main() -> Result<(), WindexError> {
    let scale = Scale::PAPER;
    let r = Relation::unique_sorted(
        scale.sim_tuples_for_paper_gib(64.0),
        KeyDistribution::SparseUniform,
        42,
    );
    let s = Relation::foreign_keys_uniform(&r, 1 << 14, 7);

    let platforms = [
        GpuSpec::v100_nvlink2(scale),
        GpuSpec::a100_pcie4(scale),
        GpuSpec::gh200(scale),
    ];

    println!(
        "{:<26} {:>12} {:>14} {:>12} {:>10}",
        "platform", "interconnect", "windowed(RS)", "hash-join", "INLJ/hash"
    );
    for spec in platforms {
        let mut gpu = Gpu::new(spec.clone());
        let inlj = QueryExecutor::new().run(
            &mut gpu,
            &r,
            &s,
            JoinStrategy::WindowedInlj {
                index: IndexKind::RadixSpline,
                window_tuples: 1 << 12,
            },
        )?;
        let mut gpu = Gpu::new(spec.clone());
        let hash = QueryExecutor::new().run(&mut gpu, &r, &s, JoinStrategy::HashJoin)?;
        println!(
            "{:<26} {:>12} {:>14.2} {:>12.2} {:>10.2}",
            spec.name,
            spec.interconnect.name,
            inlj.queries_per_second(),
            hash.queries_per_second(),
            inlj.queries_per_second() / hash.queries_per_second(),
        );
    }

    println!(
        "\nThe GH200's NVLink C2C row is a what-if beyond the paper's \
         evaluation: at 450 GB/s receive\nbandwidth even the full table \
         scan accelerates, but fine-grained index lookups gain more —\nthe \
         paper's conclusion (indexes are a feasible out-of-core design \
         point) strengthens with\nevery interconnect generation."
    );
    Ok(())
}
