//! Fault-tolerance integration tests (tier 1).
//!
//! The engine's contract under injected faults and memory pressure:
//!
//! 1. **Result equivalence** — under every fault mix (allocation failures,
//!    transient transfer faults, kernel-launch failures, all combined) the
//!    windowed INLJ produces exactly the result tuples of a fault-free
//!    hash join over the same relations.
//! 2. **Determinism** — two runs with the same fault seed on fresh devices
//!    produce byte-identical serialized reports.
//! 3. **No panics** — sweeping fault rates × HBM budgets × strategies,
//!    every query either completes (possibly degraded) or returns a typed
//!    error. Nothing reachable from the public API panics.

use std::rc::Rc;
use windex::prelude::*;
use windex_core::windowed_inlj;
use windex_core::{QuerySession, WindexError, WindowConfig};
use windex_join::{hash_join, PartitionBits, ResultSink};
use windex_sim::{FaultPlan, GpuSpec};

fn workload() -> (Relation, Relation) {
    let r = Relation::unique_sorted(1 << 13, KeyDistribution::Dense, 11);
    let s = Relation::foreign_keys_uniform(&r, 1 << 10, 12);
    (r, s)
}

/// Sorted (probe rid, base position) pairs of the fault-free hash join.
/// `r` is sorted and unique, so hash-join build rids equal index positions
/// and the pairs are directly comparable to INLJ output.
fn reference_pairs(r: &Relation, s: &Relation) -> Vec<(u64, u64)> {
    let mut g = Gpu::new(GpuSpec::v100_nvlink2(Scale::PAPER));
    let r_col = g.alloc_host_from_vec(r.keys().to_vec());
    let s_col = g.alloc_host_from_vec(s.keys().to_vec());
    let mut sink = ResultSink::with_capacity(&mut g, s.len(), MemLocation::Gpu).unwrap();
    hash_join(&mut g, &r_col, &s_col, HashJoinConfig::default(), &mut sink).unwrap();
    let mut pairs = sink.host_pairs();
    pairs.sort_unstable();
    pairs
}

fn windowed_pairs_under(plan: FaultPlan, r: &Relation, s: &Relation) -> Vec<(u64, u64)> {
    let mut g = Gpu::new(GpuSpec::v100_nvlink2(Scale::PAPER));
    g.set_fault_plan(plan).expect("valid fault plan");
    let r_col = Rc::new(g.alloc_host_from_vec(r.keys().to_vec()));
    let s_col = g.alloc_host_from_vec(s.keys().to_vec());
    let idx = windex_index::BinarySearchIndex::new(r_col);
    let cfg = WindowConfig {
        window_tuples: 256,
        bits: PartitionBits { shift: 4, bits: 8 },
        min_key: 0,
    };
    let mut sink = ResultSink::with_capacity(&mut g, s.len(), MemLocation::Gpu).unwrap();
    windowed_inlj(&mut g, &idx, &s_col, 0..s.len(), cfg, &mut sink).unwrap();
    let mut pairs = sink.host_pairs();
    pairs.sort_unstable();
    pairs
}

#[test]
fn faulted_windowed_inlj_equals_fault_free_hash_join() {
    let (r, s) = workload();
    let reference = reference_pairs(&r, &s);
    assert_eq!(reference.len(), s.len());

    // Rates are per *draw*: allocations and kernel launches draw once per
    // operation, but every CPU touch inside a kernel is a transfer draw —
    // a 256-probe binary-search window makes ~3,000 draws per attempt, and
    // a fault on any draw fails the whole kernel attempt. Transfer rates
    // therefore sit near 1/draws so an attempt retains a realistic chance
    // of success while faults still occur and are retried.
    let mixes = [
        ("alloc", FaultPlan::seeded(101).with_alloc_failures(0.05)),
        (
            "transfer",
            FaultPlan::seeded(202).with_transfer_faults(1e-4),
        ),
        ("launch", FaultPlan::seeded(303).with_launch_failures(0.05)),
        (
            "combined",
            FaultPlan::seeded(404)
                .with_alloc_failures(0.03)
                .with_transfer_faults(5e-5)
                .with_launch_failures(0.03),
        ),
    ];
    for (label, plan) in mixes {
        let pairs = windowed_pairs_under(plan, &r, &s);
        assert_eq!(pairs, reference, "fault mix {label}");
    }
}

#[test]
fn faults_are_retried_and_counted() {
    let (r, s) = workload();
    let plan = FaultPlan::seeded(7).with_launch_failures(0.10);
    let mut g = Gpu::new(GpuSpec::v100_nvlink2(Scale::PAPER));
    g.set_fault_plan(plan).expect("valid fault plan");
    let mut sess = QuerySession::new(&mut g, QueryExecutor::new(), r, s).unwrap();
    let report = sess
        .run(
            &mut g,
            JoinStrategy::WindowedInlj {
                index: IndexKind::BinarySearch,
                window_tuples: 256,
            },
        )
        .unwrap();
    assert_eq!(report.result_tuples, 1 << 10);
    assert!(report.retries > 0, "10% launch failures must force retries");
    assert!(report.counters.faults_launch > 0);
    // Retry backoff is priced into the cost model.
    assert!(report.time.fault_s > 0.0);
}

#[test]
fn same_fault_seed_gives_byte_identical_reports() {
    let run = || {
        let (r, s) = workload();
        let mut g = Gpu::new(GpuSpec::v100_nvlink2(Scale::PAPER));
        g.set_fault_plan(
            FaultPlan::seeded(42)
                .with_alloc_failures(0.02)
                .with_transfer_faults(1e-4)
                .with_launch_failures(0.03),
        )
        .expect("valid fault plan");
        let mut sess = QuerySession::new(&mut g, QueryExecutor::new(), r, s).unwrap();
        let report = sess
            .run(
                &mut g,
                JoinStrategy::WindowedInlj {
                    index: IndexKind::RadixSpline,
                    window_tuples: 512,
                },
            )
            .unwrap();
        serde_json::to_string(&report).unwrap()
    };
    assert_eq!(run(), run(), "same seed must reproduce the exact report");

    // A different seed shifts fault positions — the counters (and thus the
    // serialized report) must differ while results stay correct.
    let (r, s) = workload();
    let mut g = Gpu::new(GpuSpec::v100_nvlink2(Scale::PAPER));
    g.set_fault_plan(
        FaultPlan::seeded(43)
            .with_alloc_failures(0.02)
            .with_transfer_faults(1e-4)
            .with_launch_failures(0.03),
    )
    .expect("valid fault plan");
    let mut sess = QuerySession::new(&mut g, QueryExecutor::new(), r, s).unwrap();
    let other = sess
        .run(
            &mut g,
            JoinStrategy::WindowedInlj {
                index: IndexKind::RadixSpline,
                window_tuples: 512,
            },
        )
        .unwrap();
    assert_eq!(other.result_tuples, 1 << 10);
}

/// The acceptance stress test: sweep fault rates × HBM budgets ×
/// strategies. Every combination must complete the query — degraded if
/// necessary — or return a typed error; no panic, assert, or unwrap is
/// reachable from the public API.
#[test]
fn stress_sweep_completes_or_errors_typed() {
    let r = Relation::unique_sorted(1 << 12, KeyDistribution::Dense, 21);
    let s = Relation::foreign_keys_uniform(&r, 1 << 9, 22);
    let strategies = [
        JoinStrategy::HashJoin,
        JoinStrategy::Inlj {
            index: IndexKind::BinarySearch,
        },
        JoinStrategy::PartitionedInlj {
            index: IndexKind::BinarySearch,
        },
        JoinStrategy::WindowedInlj {
            index: IndexKind::BinarySearch,
            window_tuples: 512,
        },
    ];
    // Budgets from comfortable down to a single 4 KiB page.
    let budgets: [u64; 4] = [1 << 24, 96 * 1024, 16 * 1024, 4096];
    let rates = [0.0, 0.05, 0.25];

    let mut completed = 0usize;
    let mut typed_errors = 0usize;
    for &budget in &budgets {
        for &rate in &rates {
            for (si, &strategy) in strategies.iter().enumerate() {
                let mut spec = GpuSpec::v100_nvlink2(Scale::PAPER);
                spec.page_bytes = 4096;
                spec.hbm_bytes = budget;
                let mut g = Gpu::new(spec);
                g.set_fault_plan(
                    FaultPlan::seeded(1000 + si as u64)
                        .with_alloc_failures(rate)
                        .with_transfer_faults(rate)
                        .with_launch_failures(rate),
                )
                .expect("valid fault plan");
                let mut sess =
                    QuerySession::new(&mut g, QueryExecutor::new(), r.clone(), s.clone()).unwrap();
                match sess.run(&mut g, strategy) {
                    Ok(report) => {
                        completed += 1;
                        assert_eq!(
                            report.result_tuples,
                            s.len(),
                            "degraded run changed the result \
                             (budget {budget}, rate {rate}, {strategy})"
                        );
                    }
                    Err(e) => {
                        typed_errors += 1;
                        // High fault rates exhaust retries; tiny budgets
                        // exhaust the ladder. Both must surface as typed,
                        // displayable errors.
                        assert!(!format!("{e}").is_empty());
                        let _: WindexError = e;
                    }
                }
                // Whatever happened, the session released its device
                // allocations.
                assert_eq!(
                    g.live_gpu_bytes(),
                    0,
                    "leak at budget {budget}, rate {rate}"
                );
            }
        }
    }
    // Fault-free rows complete on every budget that can hold at least the
    // minimal ladder plan (the single-page budget can only run the
    // zero-footprint streaming INLJ): ≥ 3 budgets × 4 strategies + 1.
    assert!(completed >= 13, "completed {completed}");
    // The sweep exercises both outcomes.
    assert!(typed_errors > 0, "expected some retry-exhausted errors");
}
