//! Shape tests: the paper's qualitative findings must emerge from the
//! model at reduced sizes. Each test pins one claim of the evaluation.

use windex::prelude::*;

fn v100() -> GpuSpec {
    GpuSpec::v100_nvlink2(Scale::PAPER)
}

fn run(spec: &GpuSpec, r: &Relation, s: &Relation, st: JoinStrategy) -> QueryReport {
    let mut gpu = Gpu::new(spec.clone());
    QueryExecutor::new().run(&mut gpu, r, s, st).unwrap()
}

fn workload(paper_gib: f64, s_tuples: usize) -> (Relation, Relation) {
    let scale = Scale::PAPER;
    let r = Relation::unique_sorted(
        scale.sim_tuples_for_paper_gib(paper_gib),
        KeyDistribution::SparseUniform,
        42,
    );
    let s = Relation::foreign_keys_uniform(&r, s_tuples, 7);
    (r, s)
}

/// §3.3.2 / Fig. 4: translation requests per lookup spike once R exceeds
/// the 32 GiB TLB range; binary search suffers most, Harmonia least.
#[test]
fn tlb_cliff_at_the_tlb_range() {
    let spec = v100();
    let s_tuples = 1 << 11;
    let below = workload(8.0, s_tuples);
    let above = workload(64.0, s_tuples);
    let tx = |w: &(Relation, Relation), index| {
        run(&spec, &w.0, &w.1, JoinStrategy::Inlj { index }).translations_per_lookup()
    };
    let bs_below = tx(&below, IndexKind::BinarySearch);
    let bs_above = tx(&above, IndexKind::BinarySearch);
    assert!(bs_below < 0.01, "below range: {bs_below}");
    assert!(bs_above > 0.5, "above range: {bs_above}");
    let h_above = tx(&above, IndexKind::Harmonia);
    assert!(
        h_above < bs_above / 2.0,
        "Harmonia {h_above} should thrash far less than binary search {bs_above}"
    );
}

/// §4.3 / Figs. 5–6: partitioning the lookup keys removes the cliff.
#[test]
fn partitioning_restores_throughput() {
    let spec = v100();
    let (r, s) = workload(64.0, 1 << 12);
    let unpart = run(
        &spec,
        &r,
        &s,
        JoinStrategy::Inlj {
            index: IndexKind::BinarySearch,
        },
    );
    let part = run(
        &spec,
        &r,
        &s,
        JoinStrategy::PartitionedInlj {
            index: IndexKind::BinarySearch,
        },
    );
    assert!(
        part.queries_per_second() > 3.0 * unpart.queries_per_second(),
        "partitioned {} vs unpartitioned {}",
        part.queries_per_second(),
        unpart.queries_per_second()
    );
    assert!(
        part.translations_per_lookup() < 0.1 * unpart.translations_per_lookup(),
        "translations not eliminated"
    );
}

/// §5 / Fig. 7: the windowed INLJ keeps the partitioned throughput without
/// materializing the probe input.
#[test]
fn windowed_matches_partitioned_throughput() {
    let spec = v100();
    let (r, s) = workload(64.0, 1 << 12);
    let part = run(
        &spec,
        &r,
        &s,
        JoinStrategy::PartitionedInlj {
            index: IndexKind::RadixSpline,
        },
    );
    let windowed = run(
        &spec,
        &r,
        &s,
        JoinStrategy::WindowedInlj {
            index: IndexKind::RadixSpline,
            window_tuples: 1 << 10,
        },
    );
    let ratio = windowed.queries_per_second() / part.queries_per_second();
    assert!(
        ratio > 0.5 && ratio < 2.0,
        "windowed should stay near partitioned throughput, ratio {ratio}"
    );
}

/// Fig. 3: the hash join's throughput decays with the scan volume — about
/// 2x more data, about half the throughput.
#[test]
fn hash_join_decays_with_scan_volume() {
    let spec = v100();
    let s_tuples = 1 << 11;
    let small = workload(8.0, s_tuples);
    let large = workload(16.0, s_tuples);
    let q_small = run(&spec, &small.0, &small.1, JoinStrategy::HashJoin).queries_per_second();
    let q_large = run(&spec, &large.0, &large.1, JoinStrategy::HashJoin).queries_per_second();
    let ratio = q_small / q_large;
    assert!(
        (1.5..=2.6).contains(&ratio),
        "expected ~2x decay, got {ratio} ({q_small} -> {q_large})"
    );
}

/// §6: for selective joins at large R, the windowed INLJ beats the hash
/// join by a factor in the paper's 3–10x band.
#[test]
fn windowed_inlj_beats_hash_join_on_large_selective_joins() {
    let spec = v100();
    let (r, s) = workload(111.0, 1 << 13);
    let hash = run(&spec, &r, &s, JoinStrategy::HashJoin);
    let inlj = run(
        &spec,
        &r,
        &s,
        JoinStrategy::WindowedInlj {
            index: IndexKind::RadixSpline,
            window_tuples: 1 << 11,
        },
    );
    let speedup = inlj.queries_per_second() / hash.queries_per_second();
    assert!(
        speedup > 2.0,
        "windowed INLJ speedup only {speedup:.2}x over the hash join"
    );
    // And it moves far less data across the interconnect (Fig. 1).
    assert!(
        hash.transfer_volume_paper_bytes > 2 * inlj.transfer_volume_paper_bytes,
        "transfer volumes: hash {} vs inlj {}",
        hash.transfer_volume_paper_bytes,
        inlj.transfer_volume_paper_bytes
    );
}

/// §5.2.2 / Fig. 8: skewed lookup keys help the INLJ (cache hits).
#[test]
fn skew_improves_windowed_inlj() {
    let spec = v100();
    let scale = Scale::PAPER;
    let r = Relation::unique_sorted(
        scale.sim_tuples_for_paper_gib(48.0),
        KeyDistribution::SparseUniform,
        42,
    );
    let run_z = |z: f64| {
        let s = Relation::foreign_keys_zipf(&r, 1 << 12, z, 7);
        run(
            &spec,
            &r,
            &s,
            JoinStrategy::WindowedInlj {
                index: IndexKind::RadixSpline,
                window_tuples: 1 << 10,
            },
        )
    };
    let uniform = run_z(0.0);
    let skewed = run_z(1.75);
    assert!(
        skewed.queries_per_second() > 1.5 * uniform.queries_per_second(),
        "skew should raise throughput: {} -> {}",
        uniform.queries_per_second(),
        skewed.queries_per_second()
    );
    assert!(skewed.counters.l1_hit_rate() > uniform.counters.l1_hit_rate());
}

/// §5.2.3 / Fig. 9: NVLink favours the INLJ relative to PCI-e.
#[test]
fn nvlink_favours_index_lookups() {
    let (r, s) = workload(48.0, 1 << 11);
    let st = JoinStrategy::WindowedInlj {
        index: IndexKind::RadixSpline,
        window_tuples: 1 << 10,
    };
    let v100 = run(&GpuSpec::v100_nvlink2(Scale::PAPER), &r, &s, st);
    let a100 = run(&GpuSpec::a100_pcie4(Scale::PAPER), &r, &s, st);
    assert!(
        v100.queries_per_second() > a100.queries_per_second(),
        "INLJ should be faster over NVLink: {} vs {}",
        v100.queries_per_second(),
        a100.queries_per_second()
    );
}

/// The simulation is deterministic: identical runs produce identical
/// counters and identical estimates.
#[test]
fn runs_are_deterministic() {
    let (r, s) = workload(16.0, 1 << 10);
    let st = JoinStrategy::WindowedInlj {
        index: IndexKind::Harmonia,
        window_tuples: 256,
    };
    let a = run(&v100(), &r, &s, st);
    let b = run(&v100(), &r, &s, st);
    assert_eq!(a.counters, b.counters);
    assert_eq!(a.time.total_s.to_bits(), b.time.total_s.to_bits());
}
