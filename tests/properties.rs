//! Property-based cross-crate invariants (proptest).

use proptest::collection::vec as pvec;
use proptest::prelude::*;
use std::rc::Rc;
use windex::prelude::*;
use windex_core::strategy::{BuiltIndex, IndexConfigs};
use windex_core::WindowConfig;
use windex_join::{hash_join, inlj_stream, HashJoinConfig, RadixPartitioner, ResultSink};

fn gpu() -> Gpu {
    Gpu::new(GpuSpec::v100_nvlink2(Scale::PAPER))
}

/// Strategy for a sorted-unique key column (bounded so u64::MAX never
/// appears — it is the reserved sentinel).
fn sorted_keys(max_len: usize) -> impl Strategy<Value = Vec<u64>> {
    pvec(1u64..1 << 40, 1..max_len).prop_map(|mut v| {
        v.sort_unstable();
        v.dedup();
        v
    })
}

fn index_kind() -> impl Strategy<Value = IndexKind> {
    prop_oneof![
        Just(IndexKind::BinarySearch),
        Just(IndexKind::BPlusTree),
        Just(IndexKind::Harmonia),
        Just(IndexKind::RadixSpline),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Every index answers membership exactly: present keys return their
    /// position, absent keys return None.
    #[test]
    fn indexes_answer_membership_exactly(
        keys in sorted_keys(600),
        probes in pvec(0u64..1 << 41, 1..120),
        kind in index_kind(),
    ) {
        let mut g = gpu();
        let col = Rc::new(g.alloc_host_from_vec(keys.clone()));
        let idx = BuiltIndex::build(&mut g, kind, &col, &IndexConfigs::default());
        for p in probes {
            let expect = keys.binary_search(&p).ok().map(|i| i as u64);
            prop_assert_eq!(idx.as_dyn().lookup(&mut g, p), expect);
        }
    }

    /// The radix partitioner is a permutation: same multiset of (key, rid)
    /// pairs out, each in its correct partition, partitions contiguous.
    #[test]
    fn partitioner_is_a_permutation(
        keys in pvec(0u64..1 << 30, 1..800),
        shift in 0u32..20,
        bits in 1u32..8,
    ) {
        let mut g = gpu();
        let buf = g.alloc_host_from_vec(keys.clone());
        let pb = PartitionBits { shift, bits };
        let part = RadixPartitioner::new(pb, 0);
        let out = part.partition_stream(&mut g, &buf, 0..keys.len()).unwrap();
        prop_assert_eq!(out.len(), keys.len());
        // rids form a permutation of 0..n and map back to their keys.
        let mut seen = vec![false; keys.len()];
        for p in 0..out.partitions() {
            for i in out.offsets[p]..out.offsets[p + 1] {
                let k = out.pairs.host()[i * 2];
                let rid = out.pairs.host()[i * 2 + 1] as usize;
                prop_assert!(!seen[rid]);
                seen[rid] = true;
                prop_assert_eq!(keys[rid], k);
                prop_assert_eq!(pb.partition_of(k, 0), p);
            }
        }
        prop_assert!(seen.into_iter().all(|b| b));
    }

    /// Windowed INLJ ≡ plain INLJ for any window size and index: the
    /// paper's operator is a pure optimization, never a semantic change.
    #[test]
    fn windowed_inlj_is_semantically_transparent(
        keys in sorted_keys(500),
        n_probes in 1usize..200,
        window in 1usize..300,
        kind in index_kind(),
        seed in 0u64..1000,
    ) {
        let r = Relation::from_keys(keys, true);
        let s = Relation::foreign_keys_uniform(&r, n_probes, seed);

        let mut g = gpu();
        let col = Rc::new(g.alloc_host_from_vec(r.keys().to_vec()));
        let idx = BuiltIndex::build(&mut g, kind, &col, &IndexConfigs::default());
        let s_col = g.alloc_host_from_vec(s.keys().to_vec());

        let mut direct = ResultSink::with_capacity(&mut g, s.len(), MemLocation::Gpu).unwrap();
        inlj_stream(&mut g, idx.as_dyn(), &s_col, 0..s.len(), &mut direct).unwrap();

        let mut windowed = ResultSink::with_capacity(&mut g, s.len(), MemLocation::Gpu).unwrap();
        let bits = QueryExecutor::new().resolve_bits(&g, &r);
        let cfg = WindowConfig {
            window_tuples: window,
            bits,
            min_key: r.min_key().unwrap_or(0),
        };
        windex_core::windowed_inlj(&mut g, idx.as_dyn(), &s_col, 0..s.len(), cfg, &mut windowed).unwrap();

        let mut a = direct.host_pairs();
        let mut b = windowed.host_pairs();
        a.sort_unstable();
        b.sort_unstable();
        prop_assert_eq!(a, b);
    }

    /// The hash join over arbitrary (duplicate-laden) inputs produces
    /// exactly the reference cross-match multiset.
    #[test]
    fn hash_join_matches_reference_multiset(
        build in pvec(0u64..48, 1..200),
        probe in pvec(0u64..64, 1..200),
    ) {
        let mut g = gpu();
        let bb = g.alloc_host_from_vec(build.clone());
        let pb = g.alloc_host_from_vec(probe.clone());
        let expected: Vec<(u64, u64)> = {
            let mut v = Vec::new();
            for (pi, pk) in probe.iter().enumerate() {
                for (bi, bk) in build.iter().enumerate() {
                    if pk == bk {
                        v.push((pi as u64, bi as u64));
                    }
                }
            }
            v.sort_unstable();
            v
        };
        let mut sink = ResultSink::with_capacity(&mut g, expected.len().max(1), MemLocation::Gpu).unwrap();
        let stats = hash_join(&mut g, &bb, &pb, HashJoinConfig::default(), &mut sink).unwrap();
        prop_assert_eq!(stats.matches, expected.len());
        let mut got = sink.host_pairs();
        got.sort_unstable();
        prop_assert_eq!(got, expected);
    }

    /// The multi-value hash table stores and retrieves exact multisets.
    #[test]
    fn hash_table_multiset_semantics(
        pairs in pvec((0u64..64, 0u64..1 << 20), 1..500),
        max_block in 1usize..64,
    ) {
        let mut g = gpu();
        let cfg = windex_join::HashTableConfig { load_factor: 0.5, max_block };
        let mut t = MultiValueHashTable::new(&mut g, pairs.len(), cfg).unwrap();
        for &(k, v) in &pairs {
            t.insert(&mut g, k, v).unwrap();
        }
        for probe_key in 0u64..64 {
            let mut got = Vec::new();
            t.probe(&mut g, probe_key, |_, v| got.push(v));
            let mut expect: Vec<u64> = pairs
                .iter()
                .filter(|(k, _)| *k == probe_key)
                .map(|(_, v)| *v)
                .collect();
            got.sort_unstable();
            expect.sort_unstable();
            prop_assert_eq!(got, expect, "key {}", probe_key);
        }
    }

    /// Zipf sampling with exponent 0 over any domain stays in bounds and is
    /// deterministic under a fixed seed.
    #[test]
    fn zipf_sampler_domain_and_determinism(
        n in 1u64..100_000,
        e in 0.0f64..2.0,
        seed in 0u64..1 << 32,
    ) {
        use rand::{rngs::StdRng, SeedableRng};
        let z = ZipfSampler::new(n, e);
        let mut r1 = StdRng::seed_from_u64(seed);
        let mut r2 = StdRng::seed_from_u64(seed);
        for _ in 0..50 {
            let a = z.sample(&mut r1);
            let b = z.sample(&mut r2);
            prop_assert!(a >= 1 && a <= n);
            prop_assert_eq!(a, b);
        }
    }
}
