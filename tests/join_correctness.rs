//! Cross-crate correctness: every execution strategy must produce exactly
//! the same join result as a host-side reference join, for every index
//! structure, across workload shapes.

use std::collections::HashMap;
use windex::prelude::*;
use windex_core::strategy::{BuiltIndex, IndexConfigs};
use windex_join::{inlj_stream, ResultSink};
use windex_sim::Buffer;

fn gpu() -> Gpu {
    Gpu::new(GpuSpec::v100_nvlink2(Scale::PAPER))
}

/// Host-side reference join: (s_rid, r_pos) for every matching S tuple.
fn reference_join(r: &Relation, s: &Relation) -> Vec<(u64, u64)> {
    let pos: HashMap<u64, u64> = r
        .keys()
        .iter()
        .enumerate()
        .map(|(i, &k)| (k, i as u64))
        .collect();
    let mut out: Vec<(u64, u64)> = s
        .keys()
        .iter()
        .enumerate()
        .filter_map(|(i, k)| pos.get(k).map(|&p| (i as u64, p)))
        .collect();
    out.sort_unstable();
    out
}

fn run_sorted(r: &Relation, s: &Relation, st: JoinStrategy) -> Vec<(u64, u64)> {
    let mut g = gpu();
    let report = QueryExecutor::new().run(&mut g, r, s, st).unwrap();
    // Re-execute through the low-level API to retrieve pairs (the executor
    // reports counts; pairs are validated via inlj/window paths below), so
    // here we only check counts for the executor and use the operators
    // directly for pair-level checks.
    let reference = reference_join(r, s);
    assert_eq!(report.result_tuples, reference.len(), "{st}");
    reference
}

fn fk_workload() -> (Relation, Relation) {
    let r = Relation::unique_sorted(20_000, KeyDistribution::SparseUniform, 3);
    let s = Relation::foreign_keys_uniform(&r, 3000, 4);
    (r, s)
}

/// Probe relation containing hits and misses in equal measure.
fn mixed_workload() -> (Relation, Relation) {
    let r = Relation::unique_sorted(20_000, KeyDistribution::SparseUniform, 5);
    let mut keys = Vec::new();
    for (i, &k) in r.keys().iter().enumerate().take(4000) {
        if i % 2 == 0 {
            keys.push(k);
        } else {
            keys.push(k + 1); // gaps are >= 1, so k+1 may or may not exist
        }
    }
    let s = Relation::from_keys(keys, false);
    (r, s)
}

#[test]
fn executor_counts_match_reference_for_all_strategies() {
    for (r, s) in [fk_workload(), mixed_workload()] {
        let mut strategies = vec![JoinStrategy::HashJoin];
        for index in IndexKind::all() {
            strategies.push(JoinStrategy::Inlj { index });
            strategies.push(JoinStrategy::PartitionedInlj { index });
            strategies.push(JoinStrategy::WindowedInlj {
                index,
                window_tuples: 512,
            });
        }
        for st in strategies {
            run_sorted(&r, &s, st);
        }
    }
}

#[test]
fn inlj_pairs_match_reference_for_all_indexes() {
    let (r, s) = mixed_workload();
    let reference = reference_join(&r, &s);
    for kind in IndexKind::all() {
        let mut g = gpu();
        let col = std::rc::Rc::new(g.alloc_host_from_vec(r.keys().to_vec()));
        let idx = BuiltIndex::build(&mut g, kind, &col, &IndexConfigs::default());
        let s_col: Buffer<u64> = g.alloc_host_from_vec(s.keys().to_vec());
        let mut sink = ResultSink::with_capacity(&mut g, s.len(), MemLocation::Gpu).unwrap();
        inlj_stream(&mut g, idx.as_dyn(), &s_col, 0..s_col.len(), &mut sink).unwrap();
        let mut pairs = sink.host_pairs();
        pairs.sort_unstable();
        assert_eq!(pairs, reference, "index {kind}");
    }
}

#[test]
fn windowed_pairs_match_reference_for_all_indexes() {
    let (r, s) = mixed_workload();
    let reference = reference_join(&r, &s);
    for kind in IndexKind::all() {
        let mut g = gpu();
        let col = std::rc::Rc::new(g.alloc_host_from_vec(r.keys().to_vec()));
        let idx = BuiltIndex::build(&mut g, kind, &col, &IndexConfigs::default());
        let s_col: Buffer<u64> = g.alloc_host_from_vec(s.keys().to_vec());
        let mut sink = ResultSink::with_capacity(&mut g, s.len(), MemLocation::Gpu).unwrap();
        let bits = QueryExecutor::new().resolve_bits(&g, &r);
        let cfg = windex_core::WindowConfig {
            window_tuples: 700, // deliberately not a divisor of |S|
            bits,
            min_key: r.min_key().unwrap(),
        };
        windex_core::windowed_inlj(&mut g, idx.as_dyn(), &s_col, 0..s_col.len(), cfg, &mut sink)
            .unwrap();
        let mut pairs = sink.host_pairs();
        pairs.sort_unstable();
        assert_eq!(pairs, reference, "index {kind}");
    }
}

#[test]
fn zipf_skewed_probe_correct() {
    let r = Relation::unique_sorted(10_000, KeyDistribution::SparseUniform, 6);
    let s = Relation::foreign_keys_zipf(&r, 5000, 1.5, 7);
    let reference = reference_join(&r, &s);
    assert_eq!(reference.len(), 5000); // all FKs match
    for st in [
        JoinStrategy::HashJoin,
        JoinStrategy::WindowedInlj {
            index: IndexKind::RadixSpline,
            window_tuples: 512,
        },
    ] {
        run_sorted(&r, &s, st);
    }
}

#[test]
fn dense_keys_work_for_all_indexes() {
    let r = Relation::unique_sorted(8192, KeyDistribution::Dense, 0);
    let s = Relation::foreign_keys_uniform(&r, 1024, 1);
    for index in IndexKind::all() {
        run_sorted(&r, &s, JoinStrategy::Inlj { index });
    }
}

#[test]
fn tiny_relations() {
    // R of one tuple; S hitting and missing it. Probes outside the
    // indexed domain make this a non-FK workload, so disable validation.
    let r = Relation::from_keys(vec![100], true);
    let s = Relation::from_keys(vec![100, 99, 101, 100], false);
    let mut ex = QueryExecutor::new();
    ex.validate_foreign_keys = false;
    for index in IndexKind::all() {
        let mut g = gpu();
        let report = ex
            .run(&mut g, &r, &s, JoinStrategy::Inlj { index })
            .unwrap();
        assert_eq!(report.result_tuples, 2, "{index}");
    }
}

#[test]
fn empty_probe_side() {
    let r = Relation::unique_sorted(100, KeyDistribution::Dense, 0);
    let s = Relation::from_keys(vec![], false);
    let mut g = gpu();
    let report = QueryExecutor::new()
        .run(
            &mut g,
            &r,
            &s,
            JoinStrategy::WindowedInlj {
                index: IndexKind::Harmonia,
                window_tuples: 64,
            },
        )
        .unwrap();
    assert_eq!(report.result_tuples, 0);
    assert_eq!(report.windows, 0);
}
