//! Phase-observability integration tests (tier 1).
//!
//! The span-sum invariant is the contract of the whole observability layer:
//! the per-phase counter deltas recorded for a run must partition the run's
//! total counter delta — `phases.counter_sum() == counters` and
//! `phases.total == counters` — with nothing double-counted and nothing
//! lost. These tests pin that invariant across every join strategy, for the
//! streaming operator, for the serving layer, and — crucially — under
//! injected faults, retries, and memory-pressure degradation, where the
//! retried/degraded activity must stay attributed to the phase that
//! performed it.

use std::rc::Rc;
use windex::prelude::*;
use windex_join::ResultSink;
use windex_sim::{FaultPlan, PhaseStats};

fn workload() -> (Relation, Relation) {
    let r = Relation::unique_sorted(1 << 13, KeyDistribution::Dense, 31);
    let s = Relation::foreign_keys_uniform(&r, 1 << 10, 32);
    (r, s)
}

fn gpu() -> Gpu {
    Gpu::new(GpuSpec::v100_nvlink2(Scale::PAPER))
}

fn phase_names(phases: &PhaseBreakdown) -> Vec<&'static str> {
    phases.phases.iter().map(|p: &PhaseStats| p.phase).collect()
}

/// Span-sum invariant for every strategy the executor offers, fault-free.
#[test]
fn every_strategy_report_partitions_its_counters() {
    let (r, s) = workload();
    let strategies = [
        JoinStrategy::HashJoin,
        JoinStrategy::Inlj {
            index: IndexKind::BinarySearch,
        },
        JoinStrategy::Inlj {
            index: IndexKind::RadixSpline,
        },
        JoinStrategy::PartitionedInlj {
            index: IndexKind::BPlusTree,
        },
        JoinStrategy::WindowedInlj {
            index: IndexKind::Harmonia,
            window_tuples: 256,
        },
        JoinStrategy::WindowedInlj {
            index: IndexKind::RadixSpline,
            window_tuples: 256,
        },
    ];
    for st in strategies {
        let mut g = gpu();
        let report = QueryExecutor::new().run(&mut g, &r, &s, st).unwrap();
        assert_eq!(
            report.phases.counter_sum(),
            report.counters,
            "{st}: per-phase deltas must sum to the run total"
        );
        assert_eq!(
            report.phases.total, report.counters,
            "{st}: breakdown total must be the run delta"
        );
        assert!(report.phases.total_est_s > 0.0, "{st}");
        let names = phase_names(&report.phases);
        assert!(names.contains(&phase::LOOKUP), "{st}: phases {names:?}");
        // The lookup phase carries the probes: it must own all counted
        // lookups and the dominant share of estimated time.
        let lookup = report.phases.get(phase::LOOKUP).unwrap();
        assert_eq!(lookup.counters.lookups, report.counters.lookups, "{st}");
        assert!(
            report.phases.share(phase::LOOKUP) > 0.5,
            "{st}: lookup share {}",
            report.phases.share(phase::LOOKUP)
        );
    }
}

/// The windowed strategy additionally exposes a per-window timeline that
/// tiles the probe stream: every key, match, and lookup lands in exactly
/// one window span.
#[test]
fn window_timeline_tiles_the_probe_stream() {
    let (r, s) = workload();
    let mut g = gpu();
    let report = QueryExecutor::new()
        .run(
            &mut g,
            &r,
            &s,
            JoinStrategy::WindowedInlj {
                index: IndexKind::RadixSpline,
                window_tuples: 256,
            },
        )
        .unwrap();
    assert_eq!(report.window_timeline.len(), report.windows);
    assert_eq!(
        report.window_timeline.iter().map(|w| w.keys).sum::<usize>(),
        s.len()
    );
    assert_eq!(
        report
            .window_timeline
            .iter()
            .map(|w| w.matches)
            .sum::<usize>(),
        report.result_tuples
    );
    assert_eq!(
        report
            .window_timeline
            .iter()
            .map(|w| w.counters.lookups)
            .sum::<u64>(),
        report.counters.lookups,
        "all lookups happen inside windows"
    );
    for (i, w) in report.window_timeline.iter().enumerate() {
        assert_eq!(w.window, i, "timeline is in dispatch order");
        assert!(w.est_s > 0.0);
    }
    // Non-windowed plans report an empty timeline, not a stale one.
    let mut g = gpu();
    let flat = QueryExecutor::new()
        .run(&mut g, &r, &s, JoinStrategy::HashJoin)
        .unwrap();
    assert!(flat.window_timeline.is_empty());
    assert_eq!(flat.windows, 0);
}

/// Injected faults force retries; the retried activity must stay inside
/// the phase that performed it and the span-sum invariant must survive.
#[test]
fn span_sum_invariant_holds_under_faults_and_retries() {
    let (r, s) = workload();
    let mut g = gpu();
    g.set_fault_plan(
        FaultPlan::seeded(77)
            .with_launch_failures(0.10)
            .with_transfer_faults(5e-5),
    )
    .expect("valid fault plan");
    let mut sess = QuerySession::new(&mut g, QueryExecutor::new(), r, s).unwrap();
    let report = sess
        .run(
            &mut g,
            JoinStrategy::WindowedInlj {
                index: IndexKind::BinarySearch,
                window_tuples: 256,
            },
        )
        .unwrap();
    assert!(report.retries > 0, "fault mix must force retries");
    assert_eq!(report.phases.counter_sum(), report.counters);
    assert_eq!(report.phases.total, report.counters);
    // Fault events are counters too — they must be attributed, not lost.
    let attributed_faults: u64 = report
        .phases
        .phases
        .iter()
        .map(|p| p.counters.faults_launch)
        .sum();
    assert_eq!(attributed_faults, report.counters.faults_launch);
    assert!(report.counters.faults_launch > 0);
}

/// Memory pressure walks the degradation ladder (window shrinks, spills);
/// each retry attempt re-records from scratch, so the reported breakdown
/// still partitions exactly the *successful* attempt's delta plus the
/// ladder's own activity.
#[test]
fn span_sum_invariant_holds_under_degradation() {
    let r = Relation::unique_sorted(1 << 12, KeyDistribution::Dense, 41);
    let s = Relation::foreign_keys_uniform(&r, 1 << 9, 42);
    let mut spec = GpuSpec::v100_nvlink2(Scale::PAPER);
    spec.page_bytes = 4096;
    spec.hbm_bytes = 16 * 1024; // tight: forces shrinks/spills
    let mut g = Gpu::new(spec);
    let mut sess = QuerySession::new(&mut g, QueryExecutor::new(), r, s.clone()).unwrap();
    let report = sess
        .run(
            &mut g,
            JoinStrategy::WindowedInlj {
                index: IndexKind::BinarySearch,
                window_tuples: 512,
            },
        )
        .unwrap();
    assert!(
        !report.degradations.is_empty(),
        "16 KiB budget must degrade: {:?}",
        report.degradations
    );
    assert_eq!(report.result_tuples, s.len());
    assert_eq!(report.phases.counter_sum(), report.counters);
    assert_eq!(report.phases.total, report.counters);
}

/// The streaming operator's recorder and timeline agree with each other
/// and with the device counters, including when faults are being retried
/// mid-stream.
#[test]
fn streaming_join_observability_under_faults() {
    let (r, s) = workload();
    let mut g = gpu();
    g.set_fault_plan(FaultPlan::seeded(9).with_launch_failures(0.05))
        .expect("valid fault plan");
    let r_col = Rc::new(g.alloc_host_from_vec(r.keys().to_vec()));
    let idx = windex_index::BinarySearchIndex::new(r_col);
    let cfg = WindowConfig {
        window_tuples: 256,
        bits: PartitionBits { shift: 4, bits: 8 },
        min_key: 0,
    };
    let mut sink = ResultSink::with_capacity(&mut g, s.len(), MemLocation::Gpu).unwrap();
    let mut op = StreamingWindowJoin::new(&mut g, cfg).unwrap();
    op.set_phase_recorder(Some(PhaseRecorder::start(&g)));
    let batch: Vec<(u64, u64)> = s
        .keys()
        .iter()
        .enumerate()
        .map(|(i, &k)| (k, i as u64))
        .collect();
    for chunk in batch.chunks(100) {
        op.push(&mut g, &idx, chunk, &mut sink).unwrap();
    }
    op.finish(&mut g, &idx, &mut sink).unwrap();
    let stats = op.stats();
    let timeline = op.timeline().to_vec();
    let bd = op.take_phase_recorder().map(|rec| rec.finish(&g)).unwrap();

    assert_eq!(timeline.len(), stats.windows);
    assert_eq!(timeline.iter().map(|w| w.keys).sum::<usize>(), s.len());
    assert_eq!(
        timeline.iter().map(|w| w.matches).sum::<usize>(),
        stats.matches
    );
    // Recorder total == sum of window deltas: the operator does no counted
    // work outside flushes, and faulted/retried flush activity stays inside
    // the window that performed it.
    let mut tiled = Counters::default();
    for w in &timeline {
        tiled = tiled + w.counters;
    }
    assert_eq!(bd.counter_sum(), bd.total);
    assert_eq!(bd.total, tiled);
    let names = phase_names(&bd);
    assert!(names.contains(&phase::PARTITION), "{names:?}");
    assert!(names.contains(&phase::LOOKUP), "{names:?}");
    assert!(!names.contains(&phase::OTHER), "{names:?}");
}

/// The serving layer's report carries the same invariant: the trace's
/// counter delta is partitioned across phases, and the per-batch timeline
/// covers every dispatched window.
#[test]
fn server_report_partitions_its_counters() {
    let mut g = gpu();
    let r = Relation::unique_sorted(1 << 13, KeyDistribution::SparseUniform, 1);
    let trace = generate_trace(
        &TraceConfig {
            requests: 96,
            ..TraceConfig::default()
        },
        &r,
    );
    let mut server = Server::new(&mut g, ServeConfig::default(), r).unwrap();
    let outcome = server.run(&mut g, &trace).unwrap();
    let rep = &outcome.report;
    assert!(rep.completed > 0);
    assert_eq!(rep.phases.counter_sum(), rep.counters);
    assert_eq!(rep.phases.total, rep.counters);
    assert!(!rep.batches.is_empty());
    assert_eq!(
        rep.batches
            .iter()
            .filter(|b| b.completed)
            .map(|b| b.windows)
            .sum::<usize>(),
        rep.window.windows,
        "completed batch spans must cover every dispatched window"
    );
    assert_eq!(
        rep.batches.iter().map(|b| b.keys).sum::<usize>(),
        rep.keys_probed
    );
    assert_eq!(rep.latency.dropped, 0, "virtual clock must stay finite");
}

/// Observability is part of the report, so it must be as deterministic as
/// the rest of it: same seed ⇒ byte-identical serialized breakdowns, even
/// with faults injected.
#[test]
fn phase_breakdowns_are_deterministic() {
    let run = || {
        let (r, s) = workload();
        let mut g = gpu();
        g.set_fault_plan(FaultPlan::seeded(5).with_launch_failures(0.05))
            .expect("valid fault plan");
        let mut sess = QuerySession::new(&mut g, QueryExecutor::new(), r, s).unwrap();
        let report = sess
            .run(
                &mut g,
                JoinStrategy::WindowedInlj {
                    index: IndexKind::RadixSpline,
                    window_tuples: 512,
                },
            )
            .unwrap();
        (
            serde_json::to_string(&report.phases).unwrap(),
            serde_json::to_string(&report.window_timeline).unwrap(),
        )
    };
    assert_eq!(run(), run());
}

/// The span-sum and counter-reconciliation invariants must survive every
/// chaos scenario: brownout repricing, flap-driven serve retries, ECC
/// refetches, and the device-loss recovery path (which rebuilds the index
/// and operator mid-trace) all have to stay attributed — nothing
/// double-counted, nothing lost.
#[test]
fn span_sum_invariant_holds_under_every_chaos_scenario() {
    use windex_sim::ChaosScenario;
    let r = Relation::unique_sorted(1 << 13, KeyDistribution::SparseUniform, 1);
    let trace = generate_trace(&TraceConfig::default(), &r);
    for scenario in ChaosScenario::ALL {
        let mut g = gpu();
        let mut server = Server::new(&mut g, ServeConfig::default(), r.clone()).unwrap();
        g.set_chaos_schedule(scenario.schedule(99)).unwrap();
        let outcome = server
            .run(&mut g, &trace)
            .unwrap_or_else(|e| panic!("{scenario:?} must serve: {e}"));
        let rep = &outcome.report;
        assert_eq!(
            rep.phases.counter_sum(),
            rep.counters,
            "{scenario:?}: phase deltas must partition the run's counters"
        );
        assert_eq!(
            rep.phases.total, rep.counters,
            "{scenario:?}: recorded total must equal the run delta"
        );
        assert_eq!(
            rep.batches.iter().map(|b| b.keys).sum::<usize>(),
            rep.keys_probed,
            "{scenario:?}: batch timeline must cover every probed key"
        );
        assert_eq!(rep.latency.dropped, 0, "{scenario:?}: finite latencies");
    }
}
