//! Derive-macro behavior: named structs and externally tagged enums, the
//! exact shapes the workspace serializes.

use serde::{SerValue, Serialize};

#[derive(Serialize)]
struct Point {
    x: u64,
    y: f64,
}

#[derive(Serialize)]
#[allow(dead_code)]
enum Shape {
    Dot,
    Line { from: u64, to: u64 },
    Tag(String),
    Pair(u64, u64),
}

#[derive(Serialize)]
struct Nested {
    name: &'static str,
    inner: Point,
    maybe: Option<u64>,
    list: Vec<Shape>,
}

#[test]
fn derive_struct_named_fields() {
    let p = Point { x: 3, y: 0.5 };
    assert_eq!(
        p.to_ser_value(),
        SerValue::Map(vec![
            ("x".into(), SerValue::U64(3)),
            ("y".into(), SerValue::F64(0.5)),
        ])
    );
}

#[test]
fn derive_enum_externally_tagged() {
    assert_eq!(Shape::Dot.to_ser_value(), SerValue::Str("Dot".into()));
    assert_eq!(
        Shape::Line { from: 1, to: 2 }.to_ser_value(),
        SerValue::Map(vec![(
            "Line".into(),
            SerValue::Map(vec![
                ("from".into(), SerValue::U64(1)),
                ("to".into(), SerValue::U64(2)),
            ])
        )])
    );
    assert_eq!(
        Shape::Tag("t".into()).to_ser_value(),
        SerValue::Map(vec![("Tag".into(), SerValue::Str("t".into()))])
    );
    assert_eq!(
        Shape::Pair(1, 2).to_ser_value(),
        SerValue::Map(vec![(
            "Pair".into(),
            SerValue::Seq(vec![SerValue::U64(1), SerValue::U64(2)])
        )])
    );
}

#[test]
fn derive_nested_struct() {
    let n = Nested {
        name: "n",
        inner: Point { x: 1, y: 2.0 },
        maybe: None,
        list: vec![Shape::Dot],
    };
    let v = n.to_ser_value();
    if let SerValue::Map(fields) = v {
        assert_eq!(fields.len(), 4);
        assert_eq!(fields[0], ("name".into(), SerValue::Str("n".into())));
        assert_eq!(fields[2].1, SerValue::Null);
        assert_eq!(
            fields[3].1,
            SerValue::Seq(vec![SerValue::Str("Dot".into())])
        );
    } else {
        panic!("expected map");
    }
}
