//! Offline stand-in for the `serde` crate.
//!
//! The real serde is unavailable in this build environment (no network, no
//! vendored registry), so this shim provides the small slice of its surface
//! the workspace actually uses: a [`Serialize`] trait plus a derive macro.
//! Instead of serde's visitor-based data model, serialization goes through a
//! simple self-describing tree ([`SerValue`]) that `serde_json` (also
//! shimmed) renders as JSON. The derive macro mirrors serde's externally
//! tagged representation for enums, so swapping the real crates back in
//! produces identical JSON output.

// Shim code mirrors upstream API shapes; keep clippy out of it.
#![allow(clippy::all)]
pub use serde_derive::Serialize;

/// Self-describing serialization tree — the shim's data model.
#[derive(Debug, Clone, PartialEq)]
pub enum SerValue {
    /// Unit / nothing (`null`).
    Null,
    /// Boolean.
    Bool(bool),
    /// Signed integer.
    I64(i64),
    /// Unsigned integer.
    U64(u64),
    /// Floating point.
    F64(f64),
    /// String.
    Str(String),
    /// Ordered sequence.
    Seq(Vec<SerValue>),
    /// Ordered map with string keys (struct fields, objects).
    Map(Vec<(String, SerValue)>),
}

/// Types that can describe themselves as a [`SerValue`].
pub trait Serialize {
    /// Produce the serialization tree for `self`.
    fn to_ser_value(&self) -> SerValue;
}

macro_rules! impl_ser_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_ser_value(&self) -> SerValue {
                SerValue::I64(*self as i64)
            }
        }
    )*};
}

macro_rules! impl_ser_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_ser_value(&self) -> SerValue {
                SerValue::U64(*self as u64)
            }
        }
    )*};
}

impl_ser_int!(i8, i16, i32, i64, isize);
impl_ser_uint!(u8, u16, u32, u64, usize);

impl Serialize for f64 {
    fn to_ser_value(&self) -> SerValue {
        SerValue::F64(*self)
    }
}

impl Serialize for f32 {
    fn to_ser_value(&self) -> SerValue {
        SerValue::F64(*self as f64)
    }
}

impl Serialize for bool {
    fn to_ser_value(&self) -> SerValue {
        SerValue::Bool(*self)
    }
}

impl Serialize for str {
    fn to_ser_value(&self) -> SerValue {
        SerValue::Str(self.to_string())
    }
}

impl Serialize for String {
    fn to_ser_value(&self) -> SerValue {
        SerValue::Str(self.clone())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_ser_value(&self) -> SerValue {
        (**self).to_ser_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_ser_value(&self) -> SerValue {
        match self {
            None => SerValue::Null,
            Some(v) => v.to_ser_value(),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_ser_value(&self) -> SerValue {
        SerValue::Seq(self.iter().map(Serialize::to_ser_value).collect())
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_ser_value(&self) -> SerValue {
        SerValue::Seq(self.iter().map(Serialize::to_ser_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_ser_value(&self) -> SerValue {
        SerValue::Seq(self.iter().map(Serialize::to_ser_value).collect())
    }
}

impl<T: Serialize> Serialize for Box<T> {
    fn to_ser_value(&self) -> SerValue {
        (**self).to_ser_value()
    }
}

macro_rules! impl_ser_tuple {
    ($($name:ident : $idx:tt),+) => {
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_ser_value(&self) -> SerValue {
                SerValue::Seq(vec![$(self.$idx.to_ser_value()),+])
            }
        }
    };
}

impl_ser_tuple!(A: 0);
impl_ser_tuple!(A: 0, B: 1);
impl_ser_tuple!(A: 0, B: 1, C: 2);
impl_ser_tuple!(A: 0, B: 1, C: 2, D: 3);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_serialize() {
        assert_eq!(1u64.to_ser_value(), SerValue::U64(1));
        assert_eq!((-2i32).to_ser_value(), SerValue::I64(-2));
        assert_eq!("x".to_ser_value(), SerValue::Str("x".into()));
        assert_eq!(None::<u64>.to_ser_value(), SerValue::Null);
        assert_eq!(
            vec![1u64, 2].to_ser_value(),
            SerValue::Seq(vec![SerValue::U64(1), SerValue::U64(2)])
        );
    }
}
