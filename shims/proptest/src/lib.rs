//! Offline stand-in for `proptest`, covering the slice this workspace uses:
//! the [`Strategy`](strategy::Strategy) trait with `prop_map`, range / tuple /
//! `Just` / `any` / `collection::vec` strategies, the `prop_oneof!` union, the
//! `proptest!` test-runner macro with `#![proptest_config(...)]`, and the
//! `prop_assert!` / `prop_assert_eq!` assertion macros.
//!
//! Differences from real proptest, by design: inputs are drawn from a
//! deterministic per-case generator (no persisted failure seeds) and there is
//! no shrinking — a failing case reports its inputs via the assertion message
//! and its case index, which is reproducible because generation is
//! deterministic.

// Shim code mirrors upstream API shapes; keep clippy out of it.
#![allow(clippy::all)]
pub mod test_runner {
    use std::fmt;

    /// Per-test configuration (`cases` = number of generated inputs).
    #[derive(Debug, Clone)]
    pub struct Config {
        /// How many random cases each property runs.
        pub cases: u32,
    }

    impl Config {
        /// Config running `cases` inputs per property.
        pub fn with_cases(cases: u32) -> Self {
            Config { cases }
        }
    }

    impl Default for Config {
        fn default() -> Self {
            Config { cases: 32 }
        }
    }

    /// Why a single generated case failed.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct TestCaseError(String);

    impl TestCaseError {
        /// A failed assertion / rejected case with the given message.
        pub fn fail(msg: impl Into<String>) -> Self {
            TestCaseError(msg.into())
        }
    }

    impl fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str(&self.0)
        }
    }

    impl std::error::Error for TestCaseError {}

    /// Deterministic generator backing input generation (splitmix64).
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Rng for the `case`-th input of a property, derived so that every
        /// run of the suite sees identical inputs.
        pub fn for_case(case: u64) -> Self {
            TestRng {
                state: case.wrapping_mul(0x2545f4914f6cdd1d) ^ 0x9e3779b97f4a7c15,
            }
        }

        /// Next 64 uniform bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e3779b97f4a7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
            z ^ (z >> 31)
        }

        /// Uniform value in `[0, bound)`; `bound` must be non-zero.
        pub fn below(&mut self, bound: u64) -> u64 {
            self.next_u64() % bound
        }

        /// Uniform float in `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }
}

pub mod strategy {
    use super::test_runner::TestRng;
    use std::marker::PhantomData;
    use std::rc::Rc;

    /// Generators of test inputs. Unlike real proptest there is no value
    /// tree / shrinking: a strategy just draws a value from the rng.
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Draw one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Transform generated values with `f`.
        fn prop_map<U, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> U,
        {
            Map { inner: self, f }
        }

        /// Type-erase the strategy (used by `prop_oneof!`).
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy(Rc::new(self))
        }
    }

    /// A type-erased, shareable strategy.
    pub struct BoxedStrategy<T>(Rc<dyn Strategy<Value = T>>);

    impl<T> Clone for BoxedStrategy<T> {
        fn clone(&self) -> Self {
            BoxedStrategy(Rc::clone(&self.0))
        }
    }

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            self.0.generate(rng)
        }
    }

    /// Always generates a clone of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// Result of [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, F, U> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> U,
    {
        type Value = U;

        fn generate(&self, rng: &mut TestRng) -> U {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// Uniform choice between type-erased arms (`prop_oneof!`).
    pub struct Union<T> {
        arms: Vec<BoxedStrategy<T>>,
    }

    impl<T> Union<T> {
        /// Union over the given arms; panics if `arms` is empty.
        pub fn new(arms: Vec<BoxedStrategy<T>>) -> Self {
            assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
            Union { arms }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            let i = rng.below(self.arms.len() as u64) as usize;
            self.arms[i].generate(rng)
        }
    }

    macro_rules! impl_strategy_int_range {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = self.end.wrapping_sub(self.start) as u64;
                    self.start.wrapping_add(rng.below(span) as $t)
                }
            }

            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (start, end) = (*self.start(), *self.end());
                    assert!(start <= end, "empty range strategy");
                    let span = end.wrapping_sub(start) as u64;
                    if span == u64::MAX {
                        return rng.next_u64() as $t;
                    }
                    start.wrapping_add(rng.below(span + 1) as $t)
                }
            }
        )*};
    }

    impl_strategy_int_range!(u8, u16, u32, u64, usize);

    macro_rules! impl_strategy_signed_range {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i64).wrapping_sub(self.start as i64) as u64;
                    (self.start as i64).wrapping_add(rng.below(span) as i64) as $t
                }
            }
        )*};
    }

    impl_strategy_signed_range!(i8, i16, i32, i64, isize);

    impl Strategy for std::ops::Range<f64> {
        type Value = f64;

        fn generate(&self, rng: &mut TestRng) -> f64 {
            assert!(self.start < self.end, "empty range strategy");
            self.start + rng.unit_f64() * (self.end - self.start)
        }
    }

    macro_rules! impl_strategy_tuple {
        ($($name:ident : $idx:tt),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);

                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        };
    }

    impl_strategy_tuple!(A: 0, B: 1);
    impl_strategy_tuple!(A: 0, B: 1, C: 2);
    impl_strategy_tuple!(A: 0, B: 1, C: 2, D: 3);

    /// Types with a canonical full-domain strategy ([`any`]).
    pub trait Arbitrary: Sized {
        /// Draw an unconstrained value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    /// Strategy over a type's whole domain; see [`any`].
    pub struct Any<T>(PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// Strategy generating any value of `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }
}

pub mod collection {
    use super::strategy::Strategy;
    use super::test_runner::TestRng;
    use std::ops::Range;

    /// Strategy for `Vec`s with per-case length drawn from `size`.
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// `Vec` strategy: lengths from `size`, elements from `element`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        assert!(
            size.start < size.end,
            "empty size range for collection::vec"
        );
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.end - self.size.start) as u64;
            let len = self.size.start + rng.below(span) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Union of strategies: picks one arm uniformly per generated value.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($arm)),+
        ])
    };
}

/// Assert a condition inside a `proptest!` body (fails the case, not the
/// whole process, by returning a [`test_runner::TestCaseError`]).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)+)),
            );
        }
    };
}

/// Assert equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left == *right,
            "assertion failed: `{:?}` == `{:?}`",
            left,
            right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left == *right,
            "assertion failed: `{:?}` == `{:?}`: {}",
            left,
            right,
            format!($($fmt)+)
        );
    }};
}

/// Assert inequality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left != *right,
            "assertion failed: `{:?}` != `{:?}`",
            left,
            right
        );
    }};
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (cfg = $cfg:expr;) => {};
    (cfg = $cfg:expr;
     $(#[$meta:meta])*
     fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __config: $crate::test_runner::Config = $cfg;
            for __case in 0..__config.cases {
                let mut __rng = $crate::test_runner::TestRng::for_case(__case as u64);
                $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut __rng);)+
                let __outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                    (move || {
                        $body
                        ::std::result::Result::Ok(())
                    })();
                if let ::std::result::Result::Err(e) = __outcome {
                    panic!("proptest: case {}/{} failed: {}", __case, __config.cases, e);
                }
            }
        }
        $crate::__proptest_items! { cfg = $cfg; $($rest)* }
    };
}

/// Define property tests: each `fn name(arg in strategy, ...) { ... }` item
/// becomes a `#[test]` running the body over generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { cfg = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! {
            cfg = $crate::test_runner::Config::default();
            $($rest)*
        }
    };
}

pub mod prelude {
    //! Everything a property test conventionally imports.
    pub use crate::collection::vec as prop_vec;
    pub use crate::strategy::{any, Arbitrary, BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::{Config as ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

#[cfg(test)]
mod tests {
    use crate::collection::vec as pvec;
    use crate::prelude::*;

    #[derive(Debug, Clone, PartialEq)]
    enum Op {
        A(u64),
        B(u64),
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn ranges_and_vecs(
            xs in pvec(1u64..100, 1..50),
            f in 0.0f64..2.0,
            b in any::<bool>(),
        ) {
            prop_assert!(!xs.is_empty() && xs.len() < 50);
            prop_assert!(xs.iter().all(|&x| (1..100).contains(&x)));
            prop_assert!((0.0..2.0).contains(&f));
            prop_assert_eq!(b || !b, true);
        }

        #[test]
        fn oneof_map_and_tuples(
            ops in pvec(prop_oneof![
                (0u64..10).prop_map(Op::A),
                Just(Op::B(7)),
            ], 1..40),
            pair in (0u64..4, 10u64..20),
        ) {
            for op in &ops {
                match op {
                    Op::A(k) => prop_assert!(*k < 10),
                    Op::B(k) => prop_assert_eq!(*k, 7u64),
                }
            }
            prop_assert!(pair.0 < 4 && (10..20).contains(&pair.1));
            if ops.len() > 100 {
                return Ok(());
            }
        }
    }

    #[test]
    fn generation_is_deterministic() {
        use crate::strategy::Strategy;
        use crate::test_runner::TestRng;
        let strat = pvec(0u64..1000, 1..20);
        let a = strat.generate(&mut TestRng::for_case(3));
        let b = strat.generate(&mut TestRng::for_case(3));
        assert_eq!(a, b);
        let c = strat.generate(&mut TestRng::for_case(4));
        assert_ne!(a, c);
    }
}
