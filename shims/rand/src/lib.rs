//! Offline stand-in for `rand` 0.9 with the API slice this workspace uses:
//! `rngs::StdRng`, `SeedableRng::seed_from_u64`, and `Rng::{random,
//! random_range}` over integer/float types and ranges.
//!
//! The generator is a splitmix64 — fast, full-period over its 2^64 state,
//! and fully deterministic from the seed, which is all the workloads need
//! (statistical quality beyond that is irrelevant to the simulator).

// Shim code mirrors upstream API shapes; keep clippy out of it.
#![allow(clippy::all)]
/// Low-level source of randomness.
pub trait RngCore {
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fill `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Rngs that can be constructed from seed material.
pub trait SeedableRng: Sized {
    /// Derive a generator deterministically from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types producible by [`Rng::random`].
pub trait Random {
    /// Draw one value from `rng`.
    fn random<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Random for u64 {
    fn random<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Random for u32 {
    fn random<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Random for bool {
    fn random<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Random for f64 {
    fn random<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Random for f32 {
    fn random<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Ranges that [`Rng::random_range`] can sample from.
pub trait SampleRange<T> {
    /// Draw one value uniformly from the range. Panics if the range is empty.
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range_uint {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }

        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end - start) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                start + (rng.next_u64() % (span + 1)) as $t
            }
        }
    )*};
}

impl_sample_range_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i64).wrapping_sub(self.start as i64) as u64;
                (self.start as i64).wrapping_add((rng.next_u64() % span) as i64) as $t
            }
        }

        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end as i64).wrapping_sub(start as i64) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                (start as i64).wrapping_add((rng.next_u64() % (span + 1)) as i64) as $t
            }
        }
    )*};
}

impl_sample_range_int!(i8, i16, i32, i64, isize);

impl SampleRange<f64> for std::ops::Range<f64> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + f64::random(rng) * (self.end - self.start)
    }
}

/// Convenience methods over any [`RngCore`].
pub trait Rng: RngCore {
    /// Draw a uniformly distributed value of type `T`.
    fn random<T: Random>(&mut self) -> T {
        T::random(self)
    }

    /// Draw a value uniformly from `range`.
    fn random_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample(self)
    }

    /// Return true with probability `p` (clamped to [0, 1]).
    fn random_bool(&mut self, p: f64) -> bool {
        f64::random(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic 64-bit generator (splitmix64).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e3779b97f4a7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
            z ^ (z >> 31)
        }
    }
}

/// Everything a typical `use rand::prelude::*;` expects.
pub mod prelude {
    pub use super::rngs::StdRng;
    pub use super::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn deterministic_from_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..16 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(StdRng::seed_from_u64(42).next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v: u64 = rng.random_range(5..17u64);
            assert!((5..17).contains(&v));
            let w = rng.random_range(1..=8u64);
            assert!((1..=8).contains(&w));
            let x: usize = rng.random_range(0..3usize);
            assert!(x < 3);
            let f: f64 = rng.random();
            assert!((0.0..1.0).contains(&f));
            let i = rng.random_range(-5..5i64);
            assert!((-5..5).contains(&i));
        }
    }

    #[test]
    fn works_through_generic_dyn_bound() {
        fn draw<R: Rng + ?Sized>(rng: &mut R) -> u64 {
            rng.random_range(1..=10u64)
        }
        let mut rng = StdRng::seed_from_u64(1);
        let v = draw(&mut rng);
        assert!((1..=10).contains(&v));
    }
}
