//! Offline stand-in for `serde_derive`: a `#[derive(Serialize)]` macro
//! implemented directly on `proc_macro` token streams (no syn / quote, which
//! are unavailable offline).
//!
//! Supported shapes — everything this workspace derives:
//!
//! - structs with named fields → `SerValue::Map` of field name → value;
//! - enums with unit variants → `SerValue::Str(variant_name)`;
//! - enums with named-field variants → externally tagged
//!   `{"Variant": {fields…}}`;
//! - enums with tuple variants → `{"Variant": value}` (newtype) or
//!   `{"Variant": [values…]}`.
//!
//! Generics, tuple structs, and `#[serde(...)]` attributes are not supported
//! and produce a compile error naming the limitation.

// Shim code mirrors upstream API shapes; keep clippy out of it.
#![allow(clippy::all)]
use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Derive `serde::Serialize` (shim): see the crate docs for supported shapes.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0usize;

    // Skip outer attributes and visibility to find `struct` / `enum`.
    let mut kind = None;
    while i < tokens.len() {
        match &tokens[i] {
            TokenTree::Punct(p) if p.as_char() == '#' => i += 2, // #[...]
            TokenTree::Ident(id) if id.to_string() == "pub" => {
                i += 1;
                if let Some(TokenTree::Group(g)) = tokens.get(i) {
                    if g.delimiter() == Delimiter::Parenthesis {
                        i += 1; // pub(crate) etc.
                    }
                }
            }
            TokenTree::Ident(id) if id.to_string() == "struct" || id.to_string() == "enum" => {
                kind = Some(id.to_string());
                i += 1;
                break;
            }
            _ => i += 1,
        }
    }
    let kind = kind.expect("derive(Serialize) shim: expected `struct` or `enum`");
    let name = match &tokens[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("derive(Serialize) shim: expected type name, got {other}"),
    };
    i += 1;
    if let Some(TokenTree::Punct(p)) = tokens.get(i) {
        if p.as_char() == '<' {
            panic!("derive(Serialize) shim: generic types are not supported ({name})");
        }
    }
    let body = loop {
        match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => break g.clone(),
            Some(_) => i += 1,
            None => panic!(
                "derive(Serialize) shim: {name} has no braced body (tuple structs unsupported)"
            ),
        }
    };

    let impl_body = if kind == "struct" {
        let fields = parse_named_fields(body.stream());
        let entries: String = fields
            .iter()
            .map(|f| {
                format!(
                    "(::std::string::String::from(\"{f}\"), \
                      ::serde::Serialize::to_ser_value(&self.{f})),"
                )
            })
            .collect();
        format!("::serde::SerValue::Map(::std::vec![{entries}])")
    } else {
        let variants = parse_variants(body.stream());
        let arms: String = variants.iter().map(|v| variant_arm(&name, v)).collect();
        format!("match self {{ {arms} }}")
    };

    let out = format!(
        "impl ::serde::Serialize for {name} {{\n\
            fn to_ser_value(&self) -> ::serde::SerValue {{ {impl_body} }}\n\
        }}"
    );
    out.parse()
        .expect("derive(Serialize) shim: generated impl parses")
}

/// One enum variant: name plus field shape.
enum Fields {
    Unit,
    Named(Vec<String>),
    Tuple(usize),
}

struct Variant {
    name: String,
    fields: Fields,
}

fn variant_arm(enum_name: &str, v: &Variant) -> String {
    let vname = &v.name;
    match &v.fields {
        Fields::Unit => format!(
            "{enum_name}::{vname} => \
             ::serde::SerValue::Str(::std::string::String::from(\"{vname}\")),"
        ),
        Fields::Named(fields) => {
            let binds = fields.join(", ");
            let entries: String = fields
                .iter()
                .map(|f| {
                    format!(
                        "(::std::string::String::from(\"{f}\"), \
                          ::serde::Serialize::to_ser_value({f})),"
                    )
                })
                .collect();
            format!(
                "{enum_name}::{vname} {{ {binds} }} => ::serde::SerValue::Map(::std::vec![\
                    (::std::string::String::from(\"{vname}\"), \
                     ::serde::SerValue::Map(::std::vec![{entries}]))]),"
            )
        }
        Fields::Tuple(n) => {
            let binds: Vec<String> = (0..*n).map(|k| format!("f{k}")).collect();
            let pat = binds.join(", ");
            let inner = if *n == 1 {
                "::serde::Serialize::to_ser_value(f0)".to_string()
            } else {
                let items: String = binds
                    .iter()
                    .map(|b| format!("::serde::Serialize::to_ser_value({b}),"))
                    .collect();
                format!("::serde::SerValue::Seq(::std::vec![{items}])")
            };
            format!(
                "{enum_name}::{vname}({pat}) => ::serde::SerValue::Map(::std::vec![\
                    (::std::string::String::from(\"{vname}\"), {inner})]),"
            )
        }
    }
}

/// Parse `name: Type, ...` field lists, skipping attributes and visibility.
fn parse_named_fields(stream: TokenStream) -> Vec<String> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0usize;
    while i < tokens.len() {
        match &tokens[i] {
            TokenTree::Punct(p) if p.as_char() == '#' => i += 2,
            TokenTree::Ident(id) if id.to_string() == "pub" => {
                i += 1;
                if let Some(TokenTree::Group(g)) = tokens.get(i) {
                    if g.delimiter() == Delimiter::Parenthesis {
                        i += 1;
                    }
                }
            }
            TokenTree::Ident(id) => {
                fields.push(id.to_string());
                i += 1;
                // Expect `:`, then skip the type up to a top-level comma.
                match tokens.get(i) {
                    Some(TokenTree::Punct(p)) if p.as_char() == ':' => i += 1,
                    other => {
                        panic!("derive(Serialize) shim: expected `:` after field, got {other:?}")
                    }
                }
                let mut angle = 0i32;
                while i < tokens.len() {
                    match &tokens[i] {
                        TokenTree::Punct(p) if p.as_char() == '<' => angle += 1,
                        TokenTree::Punct(p) if p.as_char() == '>' => angle -= 1,
                        TokenTree::Punct(p) if p.as_char() == ',' && angle == 0 => {
                            i += 1;
                            break;
                        }
                        _ => {}
                    }
                    i += 1;
                }
            }
            other => panic!("derive(Serialize) shim: unexpected token in fields: {other}"),
        }
    }
    fields
}

/// Parse enum variants: `Name`, `Name { fields }`, `Name(types)`, with
/// optional attributes; discriminants (`= expr`) are skipped.
fn parse_variants(stream: TokenStream) -> Vec<Variant> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0usize;
    while i < tokens.len() {
        match &tokens[i] {
            TokenTree::Punct(p) if p.as_char() == '#' => i += 2,
            TokenTree::Punct(p) if p.as_char() == ',' => i += 1,
            TokenTree::Ident(id) => {
                let name = id.to_string();
                i += 1;
                let fields = match tokens.get(i) {
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                        i += 1;
                        Fields::Named(parse_named_fields(g.stream()))
                    }
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                        i += 1;
                        Fields::Tuple(count_tuple_fields(g.stream()))
                    }
                    _ => Fields::Unit,
                };
                // Skip a possible `= discriminant` up to the next comma.
                while i < tokens.len() {
                    match &tokens[i] {
                        TokenTree::Punct(p) if p.as_char() == ',' => break,
                        _ => i += 1,
                    }
                }
                variants.push(Variant { name, fields });
            }
            other => panic!("derive(Serialize) shim: unexpected token in enum: {other}"),
        }
    }
    variants
}

/// Count comma-separated types at the top level of a tuple-variant body.
fn count_tuple_fields(stream: TokenStream) -> usize {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    if tokens.is_empty() {
        return 0;
    }
    let mut count = 1usize;
    let mut angle = 0i32;
    for t in &tokens {
        match t {
            TokenTree::Punct(p) if p.as_char() == '<' => angle += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => angle -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && angle == 0 => count += 1,
            _ => {}
        }
    }
    // A trailing comma would overcount; tolerate it.
    if matches!(tokens.last(), Some(TokenTree::Punct(p)) if p.as_char() == ',') {
        count -= 1;
    }
    count
}
