//! Offline stand-in for `serde_json`, covering the slice the workspace
//! uses: [`Value`] / [`Number`], the [`json!`] macro over plain expressions,
//! [`to_string`] / [`to_string_pretty`], [`from_str`] parsing into a
//! [`Value`] tree, and `Display` rendering that matches serde_json's output
//! for the value shapes produced here.

// Shim code mirrors upstream API shapes; keep clippy out of it.
#![allow(clippy::all)]
use serde::{SerValue, Serialize};
use std::fmt;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number (integer or float).
    Number(Number),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<Value>),
    /// An object: ordered key → value pairs (insertion order preserved).
    Object(Vec<(String, Value)>),
}

/// A JSON number: integer-ness is preserved, as in serde_json.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Number(Repr);

#[derive(Debug, Clone, Copy)]
enum Repr {
    I64(i64),
    U64(u64),
    F64(f64),
}

impl PartialEq for Repr {
    fn eq(&self, other: &Repr) -> bool {
        match (*self, *other) {
            (Repr::I64(a), Repr::I64(b)) => a == b,
            (Repr::U64(a), Repr::U64(b)) => a == b,
            (Repr::F64(a), Repr::F64(b)) => a == b,
            // Signed/unsigned reprs of the same integer are the same number.
            (Repr::I64(a), Repr::U64(b)) | (Repr::U64(b), Repr::I64(a)) => a >= 0 && a as u64 == b,
            // Integers never equal floats, matching serde_json.
            _ => false,
        }
    }
}

impl Number {
    /// Lossy view as `f64` (always succeeds for the shim's representations).
    pub fn as_f64(&self) -> Option<f64> {
        Some(match self.0 {
            Repr::I64(v) => v as f64,
            Repr::U64(v) => v as f64,
            Repr::F64(v) => v,
        })
    }

    /// Exact view as `i64` if the number is a signed integer in range.
    pub fn as_i64(&self) -> Option<i64> {
        match self.0 {
            Repr::I64(v) => Some(v),
            Repr::U64(v) => i64::try_from(v).ok(),
            Repr::F64(_) => None,
        }
    }

    /// Exact view as `u64` if the number is a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self.0 {
            Repr::I64(v) => u64::try_from(v).ok(),
            Repr::U64(v) => Some(v),
            Repr::F64(_) => None,
        }
    }

    /// Whether the underlying representation is a signed integer.
    pub fn is_i64(&self) -> bool {
        matches!(self.0, Repr::I64(_))
    }

    /// Whether the underlying representation is an unsigned integer.
    pub fn is_u64(&self) -> bool {
        matches!(self.0, Repr::U64(_))
    }

    /// Whether the underlying representation is a float.
    pub fn is_f64(&self) -> bool {
        matches!(self.0, Repr::F64(_))
    }

    /// Build from an `f64` (`None` for NaN / infinity, as in serde_json).
    pub fn from_f64(v: f64) -> Option<Number> {
        v.is_finite().then_some(Number(Repr::F64(v)))
    }
}

impl fmt::Display for Number {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.0 {
            Repr::I64(v) => write!(f, "{v}"),
            Repr::U64(v) => write!(f, "{v}"),
            Repr::F64(v) => {
                if v == v.trunc() && v.abs() < 1e16 {
                    // serde_json prints floats with a trailing `.0`.
                    write!(f, "{v:.1}")
                } else {
                    write!(f, "{v}")
                }
            }
        }
    }
}

impl Value {
    /// Lossy numeric view (`None` for non-numbers).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => n.as_f64(),
            _ => None,
        }
    }

    /// String view (`None` for non-strings).
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// Whether this is `Value::Null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Exact unsigned-integer view (`None` for non-integers).
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Number(n) => n.as_u64(),
            _ => None,
        }
    }

    /// Exact signed-integer view (`None` for non-integers).
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Number(n) => n.as_i64(),
            _ => None,
        }
    }

    /// Boolean view (`None` for non-booleans).
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Array view (`None` for non-arrays).
    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// Object view as ordered key → value pairs (`None` for non-objects).
    pub fn as_object(&self) -> Option<&Vec<(String, Value)>> {
        match self {
            Value::Object(entries) => Some(entries),
            _ => None,
        }
    }

    /// Look up `key` in an object (`None` for non-objects / missing keys).
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(entries) => entries.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }
}

fn escape_into(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_value(out: &mut String, v: &Value, indent: Option<usize>, level: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Number(n) => out.push_str(&n.to_string()),
        Value::String(s) => escape_into(out, s),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                if let Some(w) = indent {
                    out.push('\n');
                    out.push_str(&" ".repeat(w * (level + 1)));
                }
                write_value(out, item, indent, level + 1);
            }
            if let Some(w) = indent {
                out.push('\n');
                out.push_str(&" ".repeat(w * level));
            }
            out.push(']');
        }
        Value::Object(entries) => {
            if entries.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, item)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                if let Some(w) = indent {
                    out.push('\n');
                    out.push_str(&" ".repeat(w * (level + 1)));
                }
                escape_into(out, k);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, item, indent, level + 1);
            }
            if let Some(w) = indent {
                out.push('\n');
                out.push_str(&" ".repeat(w * level));
            }
            out.push('}');
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut out = String::new();
        write_value(&mut out, self, None, 0);
        f.write_str(&out)
    }
}

impl From<SerValue> for Value {
    fn from(v: SerValue) -> Value {
        match v {
            SerValue::Null => Value::Null,
            SerValue::Bool(b) => Value::Bool(b),
            SerValue::I64(v) => Value::Number(Number(Repr::I64(v))),
            SerValue::U64(v) => Value::Number(Repr::U64(v).into()),
            SerValue::F64(v) => Value::Number(Number(Repr::F64(v))),
            SerValue::Str(s) => Value::String(s),
            SerValue::Seq(items) => Value::Array(items.into_iter().map(Value::from).collect()),
            SerValue::Map(entries) => Value::Object(
                entries
                    .into_iter()
                    .map(|(k, v)| (k, Value::from(v)))
                    .collect(),
            ),
        }
    }
}

impl From<Repr> for Number {
    fn from(r: Repr) -> Number {
        Number(r)
    }
}

impl Serialize for Value {
    fn to_ser_value(&self) -> SerValue {
        match self {
            Value::Null => SerValue::Null,
            Value::Bool(b) => SerValue::Bool(*b),
            Value::Number(n) => match n.0 {
                Repr::I64(v) => SerValue::I64(v),
                Repr::U64(v) => SerValue::U64(v),
                Repr::F64(v) => SerValue::F64(v),
            },
            Value::String(s) => SerValue::Str(s.clone()),
            Value::Array(items) => {
                SerValue::Seq(items.iter().map(Serialize::to_ser_value).collect())
            }
            Value::Object(entries) => SerValue::Map(
                entries
                    .iter()
                    .map(|(k, v)| (k.clone(), v.to_ser_value()))
                    .collect(),
            ),
        }
    }
}

macro_rules! impl_value_eq_prim {
    ($($t:ty),*) => {$(
        impl PartialEq<$t> for Value {
            fn eq(&self, other: &$t) -> bool {
                *self == Value::from(*other)
            }
        }

        impl PartialEq<Value> for $t {
            fn eq(&self, other: &Value) -> bool {
                Value::from(*self) == *other
            }
        }
    )*};
}

impl_value_eq_prim!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize, f64, f32, bool);

impl PartialEq<&str> for Value {
    fn eq(&self, other: &&str) -> bool {
        self.as_str() == Some(*other)
    }
}

impl PartialEq<str> for Value {
    fn eq(&self, other: &str) -> bool {
        self.as_str() == Some(other)
    }
}

impl PartialEq<String> for Value {
    fn eq(&self, other: &String) -> bool {
        self.as_str() == Some(other.as_str())
    }
}

impl PartialEq<Value> for &str {
    fn eq(&self, other: &Value) -> bool {
        other.as_str() == Some(*self)
    }
}

impl PartialEq<Value> for String {
    fn eq(&self, other: &Value) -> bool {
        other.as_str() == Some(self.as_str())
    }
}

macro_rules! impl_value_from_int {
    ($($t:ty => $repr:ident as $cast:ty),*) => {$(
        impl From<$t> for Value {
            fn from(v: $t) -> Value {
                Value::Number(Number(Repr::$repr(v as $cast)))
            }
        }
    )*};
}

impl_value_from_int!(
    i8 => I64 as i64, i16 => I64 as i64, i32 => I64 as i64, i64 => I64 as i64,
    isize => I64 as i64,
    u8 => U64 as u64, u16 => U64 as u64, u32 => U64 as u64, u64 => U64 as u64,
    usize => U64 as u64
);

impl From<f64> for Value {
    fn from(v: f64) -> Value {
        Value::Number(Number(Repr::F64(v)))
    }
}

impl From<f32> for Value {
    fn from(v: f32) -> Value {
        Value::Number(Number(Repr::F64(v as f64)))
    }
}

impl From<bool> for Value {
    fn from(v: bool) -> Value {
        Value::Bool(v)
    }
}

macro_rules! impl_value_from_ref {
    ($($t:ty),*) => {$(
        impl From<&$t> for Value {
            fn from(v: &$t) -> Value {
                Value::from(*v)
            }
        }
    )*};
}

impl_value_from_ref!(i32, i64, u32, u64, usize, f64, f32, bool);

impl From<&str> for Value {
    fn from(v: &str) -> Value {
        Value::String(v.to_string())
    }
}

impl From<String> for Value {
    fn from(v: String) -> Value {
        Value::String(v)
    }
}

/// Serialization error (the shim's data model is total, so this only exists
/// for signature compatibility).
#[derive(Debug)]
pub struct Error(String);

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

/// Serialize `value` as a compact JSON string.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let v = Value::from(value.to_ser_value());
    let mut out = String::new();
    write_value(&mut out, &v, None, 0);
    Ok(out)
}

/// Serialize `value` as pretty-printed JSON (two-space indent).
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let v = Value::from(value.to_ser_value());
    let mut out = String::new();
    write_value(&mut out, &v, Some(2), 0);
    Ok(out)
}

/// Convert a serializable value into a [`Value`] tree.
pub fn to_value<T: Serialize + ?Sized>(value: &T) -> Result<Value, Error> {
    Ok(Value::from(value.to_ser_value()))
}

/// Parse a JSON document into a [`Value`] tree. Objects preserve key order,
/// numbers keep their integer-ness (as in serde_json's
/// `from_str::<Value>`), and trailing garbage after the document is an
/// error.
pub fn from_str(s: &str) -> Result<Value, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error(format!("trailing characters at byte {}", p.pos)));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error(format!(
                "expected '{}' at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'n') => self.parse_keyword("null", Value::Null),
            Some(b't') => self.parse_keyword("true", Value::Bool(true)),
            Some(b'f') => self.parse_keyword("false", Value::Bool(false)),
            Some(b'"') => Ok(Value::String(self.parse_string()?)),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(b'-') | Some(b'0'..=b'9') => self.parse_number(),
            _ => Err(Error(format!("unexpected input at byte {}", self.pos))),
        }
    }

    fn parse_keyword(&mut self, word: &str, value: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(Error(format!("invalid literal at byte {}", self.pos)))
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let b = self
                .peek()
                .ok_or_else(|| Error("unterminated string".into()))?;
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let esc = self
                        .peek()
                        .ok_or_else(|| Error("unterminated escape".into()))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or_else(|| Error("truncated \\u escape".into()))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| Error("invalid \\u escape".into()))?;
                            self.pos += 4;
                            // Surrogate pairs are not produced by the shim's
                            // writer; reject rather than mis-decode.
                            let c = char::from_u32(code)
                                .ok_or_else(|| Error("unsupported \\u escape".into()))?;
                            out.push(c);
                        }
                        _ => return Err(Error(format!("bad escape at byte {}", self.pos))),
                    }
                }
                _ => {
                    // Re-decode from the byte position to keep multi-byte
                    // UTF-8 sequences intact.
                    let start = self.pos - 1;
                    let s = std::str::from_utf8(&self.bytes[start..])
                        .map_err(|_| Error("invalid UTF-8 in string".into()))?;
                    let c = s.chars().next().expect("non-empty by construction");
                    out.push(c);
                    self.pos = start + c.len_utf8();
                }
            }
        }
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error("invalid number".into()))?;
        let repr = if !is_float {
            if text.starts_with('-') {
                text.parse::<i64>().map(Repr::I64).ok()
            } else {
                text.parse::<u64>().map(Repr::U64).ok()
            }
        } else {
            None
        };
        let repr = match repr {
            Some(r) => r,
            None => Repr::F64(
                text.parse::<f64>()
                    .map_err(|_| Error(format!("invalid number '{text}'")))?,
            ),
        };
        Ok(Value::Number(Number(repr)))
    }

    fn parse_array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(Error(format!("expected ',' or ']' at byte {}", self.pos))),
            }
        }
    }

    fn parse_object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(entries));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.parse_value()?;
            entries.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(entries));
                }
                _ => return Err(Error(format!("expected ',' or '}}' at byte {}", self.pos))),
            }
        }
    }
}

/// Build a [`Value`] from a plain expression (or `null`). Object/array
/// literal syntax from the real `json!` macro is intentionally unsupported.
#[macro_export]
macro_rules! json {
    (null) => {
        $crate::Value::Null
    };
    ($e:expr) => {
        $crate::Value::from($e)
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_macro_preserves_integerness() {
        let one = json!(1);
        match &one {
            Value::Number(n) => {
                assert!(n.is_i64());
                assert_eq!(n.as_f64(), Some(1.0));
            }
            _ => panic!("expected number"),
        }
        assert_eq!(one.to_string(), "1");
        assert_eq!(json!(1.5).to_string(), "1.5");
        assert_eq!(json!(2.0).to_string(), "2.0");
        assert_eq!(json!("hi").to_string(), "\"hi\"");
        assert_eq!(json!(null), Value::Null);
    }

    #[test]
    fn float_equality_matches_test_usage() {
        // Mirrors `num(1.23456) == json!(1.235)` in the bench crate.
        let r = (1.23456f64 * 1000.0).round() / 1000.0;
        assert_eq!(json!(r), json!(1.235));
    }

    #[test]
    fn pretty_print_shape() {
        let v = Value::Object(vec![
            ("a".into(), json!(1)),
            ("b".into(), Value::Array(vec![json!(true), Value::Null])),
        ]);
        let s = to_string_pretty(&v).unwrap();
        assert_eq!(s, "{\n  \"a\": 1,\n  \"b\": [\n    true,\n    null\n  ]\n}");
        assert_eq!(to_string(&v).unwrap(), "{\"a\":1,\"b\":[true,null]}");
    }

    #[test]
    fn string_escaping() {
        assert_eq!(json!("a\"b\\c\nd").to_string(), "\"a\\\"b\\\\c\\nd\"");
    }

    #[test]
    fn parse_round_trips_writer_output() {
        let v = Value::Object(vec![
            ("a".into(), json!(1)),
            ("b".into(), Value::Array(vec![json!(true), Value::Null])),
            ("c".into(), json!(-2.5)),
            ("d".into(), json!("x\n\"y\"")),
        ]);
        for text in [to_string(&v).unwrap(), to_string_pretty(&v).unwrap()] {
            assert_eq!(from_str(&text).unwrap(), v);
        }
    }

    #[test]
    fn parse_preserves_integerness_and_key_order() {
        let v = from_str("{\"z\": 1, \"a\": 2.0, \"n\": -3}").unwrap();
        let keys: Vec<&str> = v
            .as_object()
            .unwrap()
            .iter()
            .map(|(k, _)| k.as_str())
            .collect();
        assert_eq!(keys, vec!["z", "a", "n"]);
        assert_eq!(v.get("z").unwrap().as_u64(), Some(1));
        assert!(v.get("a").unwrap().as_u64().is_none(), "2.0 stays a float");
        assert_eq!(v.get("n").unwrap().as_i64(), Some(-3));
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(from_str("").is_err());
        assert!(from_str("{\"a\": }").is_err());
        assert!(from_str("[1, 2] tail").is_err());
        assert!(from_str("nul").is_err());
        assert!(from_str("\"open").is_err());
    }

    #[test]
    fn value_accessors() {
        let v = from_str("{\"arr\": [1], \"b\": true}").unwrap();
        assert_eq!(v.get("arr").unwrap().as_array().unwrap().len(), 1);
        assert_eq!(v.get("b").unwrap().as_bool(), Some(true));
        assert!(v.get("missing").is_none());
        assert!(json!(1).get("x").is_none());
    }
}
