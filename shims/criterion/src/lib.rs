//! Offline stand-in for `criterion`, keeping the workspace's benches
//! compiling and runnable without the real crate. Each benchmark runs a
//! small fixed number of timed iterations and prints one summary line —
//! enough to smoke-test the bench code paths and get rough numbers, without
//! criterion's statistics, warm-up, or HTML reports.

// Shim code mirrors upstream API shapes; keep clippy out of it.
#![allow(clippy::all)]
use std::time::Instant;

/// How a group's throughput is expressed (stored for display only).
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Batch sizing hint for [`Bencher::iter_batched`] (ignored by the shim).
#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    /// Small per-iteration input.
    SmallInput,
    /// Large per-iteration input.
    LargeInput,
    /// One input per batch.
    PerIteration,
}

/// Top-level benchmark driver.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    /// Set the number of timed iterations per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n;
        self
    }

    /// Start a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            throughput: None,
        }
    }
}

/// A named set of related benchmarks.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Record the group's work-per-iteration for throughput display.
    pub fn throughput(&mut self, throughput: Throughput) {
        self.throughput = Some(throughput);
    }

    /// Run one benchmark and print a summary line.
    pub fn bench_function<F>(&mut self, id: impl std::fmt::Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut bencher = Bencher {
            iters: self.criterion.sample_size.max(1) as u64,
            elapsed_ns: 0,
        };
        f(&mut bencher);
        let per_iter = bencher.elapsed_ns as f64 / bencher.iters as f64;
        let rate = match self.throughput {
            Some(Throughput::Elements(n)) if per_iter > 0.0 => {
                format!(" ({:.1} Melem/s)", n as f64 / per_iter * 1e3)
            }
            Some(Throughput::Bytes(n)) if per_iter > 0.0 => {
                format!(" ({:.1} MB/s)", n as f64 / per_iter * 1e3)
            }
            _ => String::new(),
        };
        println!(
            "bench {}/{}: {:.0} ns/iter{}",
            self.name, id, per_iter, rate
        );
        self
    }

    /// End the group (no-op beyond matching criterion's API).
    pub fn finish(self) {}
}

/// Passed to each benchmark closure to time the measured routine.
pub struct Bencher {
    iters: u64,
    elapsed_ns: u128,
}

impl Bencher {
    /// Time `routine`, running it a fixed number of iterations.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            std::hint::black_box(routine());
        }
        self.elapsed_ns = start.elapsed().as_nanos();
    }

    /// Time `routine` over inputs built by `setup`; setup time is excluded.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let mut total = 0u128;
        for _ in 0..self.iters {
            let input = setup();
            let start = Instant::now();
            std::hint::black_box(routine(input));
            total += start.elapsed().as_nanos();
        }
        self.elapsed_ns = total;
    }
}

/// Prevent the optimizer from discarding a value (re-export for parity).
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Define a benchmark group function from target functions.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $cfg:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $cfg;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Define `main` running the given benchmark groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        let mut group = c.benchmark_group("shim");
        group.throughput(Throughput::Elements(64));
        group.bench_function("iter", |b| b.iter(|| (0u64..64).sum::<u64>()));
        group.bench_function("batched", |b| {
            b.iter_batched(
                || vec![1u64; 64],
                |v| v.iter().sum::<u64>(),
                BatchSize::SmallInput,
            )
        });
        group.finish();
    }

    criterion_group! {
        name = benches;
        config = Criterion::default().sample_size(3);
        targets = sample_bench
    }

    #[test]
    fn group_runs_targets() {
        benches();
    }
}
