//! # windex — out-of-core GPU index joins over fast interconnects
//!
//! Facade crate for the `windex` workspace, a full reproduction of
//! *“Efficiently Indexing Large Data on GPUs with Fast Interconnects”*
//! (EDBT 2025). It re-exports the public API of all member crates:
//!
//! - [`sim`] — GPU + interconnect simulator substrate (TLB, caches, warps,
//!   cost model);
//! - [`workload`] — relation generators (unique sorted keys, foreign-key
//!   sampling, Zipf skew);
//! - [`index`] — the four out-of-core index structures: binary search,
//!   B+tree, Harmonia, RadixSpline;
//! - [`join`] — hash join (WarpCore-style multi-value hash table), INLJ, and
//!   the SWWC radix partitioner;
//! - [`core`] — the paper's contribution: windowed partitioning, plus the
//!   query engine that runs and measures join strategies;
//! - [`serve`] — a deterministic multi-tenant serving layer that batches
//!   concurrent lookup requests into shared partitioning windows, and scales
//!   it out: a multi-GPU cluster with radix-sharded or replicated placement,
//!   shard-aware routing over priced inter-GPU links, and device-loss
//!   failover/re-sharding — plus an auto-tuned server that picks
//!   `{strategy, window, partition bits}` per tenant online from observed
//!   KPIs.
//!
//! ## Quickstart
//!
//! ```
//! use windex::prelude::*;
//!
//! // Simulated V100 + NVLink 2.0 at the default 1024x reproduction scale.
//! let mut gpu = Gpu::new(GpuSpec::v100_nvlink2(Scale::PAPER));
//!
//! // A small join: R (indexed, CPU memory) ⋈ S (probe stream).
//! let r = Relation::unique_sorted(1 << 16, KeyDistribution::SparseUniform, 42);
//! let s = Relation::foreign_keys_uniform(&r, 1 << 12, 7);
//!
//! let report = QueryExecutor::new()
//!     .run(
//!         &mut gpu,
//!         &r,
//!         &s,
//!         JoinStrategy::WindowedInlj {
//!             index: IndexKind::RadixSpline,
//!             window_tuples: 1 << 12,
//!         },
//!     )
//!     .unwrap();
//! assert_eq!(report.result_tuples, 1 << 12); // every FK matches
//! println!("estimated throughput: {:.2} queries/s", report.queries_per_second());
//! ```

pub use windex_core as core;
pub use windex_index as index;
pub use windex_join as join;
pub use windex_serve as serve;
pub use windex_sim as sim;
pub use windex_workload as workload;

/// One-stop imports for examples and downstream users.
pub mod prelude {
    pub use windex_core::prelude::*;
    pub use windex_index::{
        BPlusTree, BinarySearchIndex, Harmonia, IndexKind, OutOfCoreIndex, RadixSpline,
    };
    pub use windex_join::{HashJoinConfig, MultiValueHashTable, RadixPartitioner};
    pub use windex_serve::{
        generate_tenant_trace, generate_trace, merge_traces, render_tuner_openmetrics, sample_tail,
        BatchPolicy, ClusterConfig, ClusterReport, ClusterServer, ClusterSpec, LookupRequest,
        LookupResponse, Placement, QueryCard, RequestOutcome, RequestTrace, ServeConfig, Server,
        ServerReport, ShardLeg, StageBreakdown, StageLatencyStats, TailConfig, TailReport,
        TraceConfig, TunedConfig, TunedReport, TunedServer,
    };
    pub use windex_sim::{Counters, Gpu, GpuSpec, InterconnectSpec, MemLocation, Scale};
    pub use windex_workload::{KeyDistribution, Relation, ZipfSampler};
}
